"""Golden-result regression suite for the scenario subsystem.

Pins **bit-exact** aggregate and per-tenant results for every scenario preset
x {flush, tagged, partitioned} x {Conv-BTB, BTB-X} at a tiny fixed scale, so
any change that shifts numbers -- composer scheduling order, ASID tagging or
coloring, partition apportionment, trace generation, timing attribution --
fails *loudly* here instead of silently drifting the paper's consolidated
curves.  The traces behind the fixture are not committed files: workload
generation is seeded and deterministic, so ``(workload, instructions)`` fully
reproduces them on any machine and Python version.

When a change is *intentionally* result-altering, regenerate the fixture and
commit it together with the change (see TESTING.md)::

    PYTHONPATH=src python tests/test_golden_scenarios.py regenerate

The suite is part of the default tier-1 invocation (``pytest -x -q``); the
``golden`` marker only exists so it can be selected or skipped explicitly
(``-m golden`` / ``-m "not golden"``).
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

from repro.common.config import ASIDMode, BTBStyle, ISAStyle
from repro.scenarios.generate import ScenarioRecipe, generate_scenario
from repro.scenarios.presets import PRESET_NAMES
from repro.scenarios.run import execute_scenario

FIXTURE_PATH = pathlib.Path(__file__).parent / "golden" / "scenario_golden.json"

#: The pinned grid.  Deliberately small but complete: every preset, every
#: ASID mode, the paper's baseline and its proposal.
GOLDEN_STYLES = (BTBStyle.CONVENTIONAL, BTBStyle.BTBX)
GOLDEN_ASID_MODES = (ASIDMode.FLUSH, ASIDMode.TAGGED, ASIDMode.PARTITIONED)
GOLDEN_INSTRUCTIONS = 8_000
GOLDEN_WARMUP = 2_000
GOLDEN_BUDGET_KIB = 14.5

#: Extra cells pinning the ASID-tagged/partitionable *secondary* structures:
#: PDede's Page-/Region-BTB and R-BTB's Page-BTB only matter under retention
#: modes, and the shared-footprint preset is what makes their duplication
#: behaviour visible.
SECONDARY_STYLES = (BTBStyle.PDEDE, BTBStyle.REDUCED)
SECONDARY_PRESETS = ("consolidated_server", "shared_services")
SECONDARY_ASID_MODES = (ASIDMode.TAGGED, ASIDMode.PARTITIONED)

#: Extra cells pinning the ASID-aware *cache hierarchy*: per-tenant L1-I and
#: L2 MPKI under flush/tagged/partitioned cache modes (the BTB itself runs in
#: tagged retention so only the hierarchy varies across these cells).
CACHE_PRESETS = ("consolidated_server", "shared_services")
CACHE_CELL_STYLES = (BTBStyle.BTBX,)
CACHE_CELL_MODES = (ASIDMode.FLUSH, ASIDMode.TAGGED, ASIDMode.PARTITIONED)
#: Two baseline-organization cells keep the Conv-BTB path covered without
#: doubling the grid.
CACHE_EXTRA_CELLS = (
    ("consolidated_server", BTBStyle.CONVENTIONAL, ASIDMode.FLUSH),
    ("shared_services", BTBStyle.CONVENTIONAL, ASIDMode.TAGGED),
)

#: Generated-scenario cells: seeded recipes expanded at collection time (a
#: spec is a pure function of its recipe), pinning the generator's draw
#: sequence and the ``gen_``-workload name resolution path bit-exactly.
GENERATED_RECIPES = (
    ScenarioRecipe(
        name="gen_mix", tenants=6, seed=101, workload_population=3,
        quantum_instructions=1_024,
    ),
    ScenarioRecipe(
        name="gen_skew", tenants=5, seed=202, workload_population=3,
        weight_skew=1.5, max_weight=4, quantum_instructions=1_024,
        policy="weighted",
    ),
    ScenarioRecipe(
        name="gen_x86", tenants=4, seed=303, workload_population=2,
        isa=ISAStyle.X86, quantum_instructions=1_024,
    ),
)
GENERATED_SPECS = {recipe.name: generate_scenario(recipe) for recipe in GENERATED_RECIPES}
GENERATED_CELLS = (
    ("gen_mix", BTBStyle.BTBX, ASIDMode.TAGGED),
    ("gen_mix", BTBStyle.BTBX, ASIDMode.PARTITIONED),
    ("gen_skew", BTBStyle.CONVENTIONAL, ASIDMode.PARTITIONED),
    ("gen_x86", BTBStyle.BTBX, ASIDMode.FLUSH),
)

#: Aggregate counters pinned bit-exactly (ints and one exact float).
AGGREGATE_FIELDS = (
    "instructions",
    "btb_misses_taken",
    "branches",
    "taken_branches",
    "execute_flushes",
    "decode_resteers",
    "direction_mispredictions",
    "target_mispredictions",
    "l1i_misses",
    "cycles",
)

#: Per-tenant counters pinned bit-exactly.
TENANT_FIELDS = ("instructions", "btb_misses_taken", "branches", "cycles")


def golden_cells() -> list[tuple[str, BTBStyle, ASIDMode]]:
    """The (preset, style, asid_mode) grid the fixture must cover exactly."""
    cells = [
        (preset, style, mode)
        for preset in PRESET_NAMES
        for style in GOLDEN_STYLES
        for mode in GOLDEN_ASID_MODES
    ]
    cells += [
        (preset, style, mode)
        for preset in SECONDARY_PRESETS
        for style in SECONDARY_STYLES
        for mode in SECONDARY_ASID_MODES
    ]
    cells += list(GENERATED_CELLS)
    return cells


def resolve_golden_scenario(preset: str):
    """Golden cells address presets by name; generated cells resolve here."""
    return GENERATED_SPECS.get(preset, preset)


def cache_golden_cells() -> list[tuple[str, BTBStyle, ASIDMode]]:
    """The (preset, style, cache_mode) grid of the hierarchy cells."""
    cells = [
        (preset, style, cache_mode)
        for preset in CACHE_PRESETS
        for style in CACHE_CELL_STYLES
        for cache_mode in CACHE_CELL_MODES
    ]
    cells += list(CACHE_EXTRA_CELLS)
    return cells


def cell_key(preset: str, style: BTBStyle, mode: ASIDMode) -> str:
    return f"{preset}/{style.value}/{mode.value}"


def cache_cell_key(preset: str, style: BTBStyle, cache_mode: ASIDMode) -> str:
    return f"{preset}/{style.value}/cache-{cache_mode.value}"


def compute_cell(
    preset: str, style: BTBStyle, mode: ASIDMode, backend: str | None = None
) -> dict:
    """Simulate one golden cell and distill it to the pinned counters.

    Secondary-structure cells (PDede, R-BTB) additionally pin the duplication
    counters and the secondary partition maps -- the behaviour those cells
    exist to lock down.  The legacy Conv-BTB/BTB-X cells keep their original
    schema so the pre-existing fixture entries stay byte-identical.

    ``backend`` picks the execution engine (None resolves like the library
    default); the backend-differential suite replays the whole grid with
    ``backend="numpy"`` against the same fixture.
    """
    result = execute_scenario(
        resolve_golden_scenario(preset),
        style=style,
        asid_mode=mode,
        budget_kib=GOLDEN_BUDGET_KIB,
        instructions=GOLDEN_INSTRUCTIONS,
        warmup_instructions=GOLDEN_WARMUP,
        backend=backend,
    )
    return distill_cell(result, style)


def distill_cell(result, style: BTBStyle) -> dict:
    """Distill a ScenarioResult to the pinned counters of a main-grid cell.

    Shared by the direct path above and the service-path replay
    (tests/test_service_golden.py), so both compare against the fixture
    through exactly the same projection.
    """
    cell = {
        "context_switches": result.context_switches,
        "partition_sets": result.partition_sets,
        "aggregate": {name: getattr(result.aggregate, name) for name in AGGREGATE_FIELDS},
        "aggregate_btb_mpki": result.aggregate.btb_mpki,
        "per_tenant": {
            tenant: {name: getattr(tenant_result, name) for name in TENANT_FIELDS}
            for tenant, tenant_result in result.per_tenant.items()
        },
    }
    if style in SECONDARY_STYLES:
        cell["secondary_partition_sets"] = result.secondary_partition_sets
        cell["duplication"] = result.duplication
    return cell


def compute_cache_cell(
    preset: str, style: BTBStyle, cache_mode: ASIDMode, backend: str | None = None
) -> dict:
    """Simulate one hierarchy cell and distill it to the pinned counters.

    These cells exist to lock down the ASID-aware memory hierarchy, so they
    pin what the main grid does not: per-tenant L1-I and L2 miss counts and
    MPKI, the reported cache mode and the per-level partition maps.
    """
    result = execute_scenario(
        preset,
        style=style,
        asid_mode=ASIDMode.TAGGED,
        budget_kib=GOLDEN_BUDGET_KIB,
        instructions=GOLDEN_INSTRUCTIONS,
        warmup_instructions=GOLDEN_WARMUP,
        cache_mode=cache_mode,
        backend=backend,
    )
    return distill_cache_cell(result)


def distill_cache_cell(result) -> dict:
    """Distill a ScenarioResult to the pinned counters of a hierarchy cell."""
    return {
        "cache_mode": result.cache_mode,
        "context_switches": result.context_switches,
        "cache_partition_sets": result.cache_partition_sets,
        "aggregate": {
            "instructions": result.aggregate.instructions,
            "l1i_misses": result.aggregate.l1i_misses,
            "l2_accesses": result.aggregate.l2_accesses,
            "l2_misses": result.aggregate.l2_misses,
            "cycles": result.aggregate.cycles,
        },
        "aggregate_l1i_mpki": result.aggregate.l1i_mpki,
        "aggregate_l2_mpki": result.aggregate.l2_mpki,
        "per_tenant": {
            tenant: {
                "instructions": tenant_result.instructions,
                "l1i_misses": tenant_result.l1i_misses,
                "l2_misses": tenant_result.l2_misses,
                "l1i_mpki": tenant_result.l1i_mpki,
                "l2_mpki": tenant_result.l2_mpki,
            }
            for tenant, tenant_result in result.per_tenant.items()
        },
    }


def load_fixture() -> dict:
    if not FIXTURE_PATH.exists():  # pragma: no cover - repo invariant
        pytest.fail(
            f"golden fixture {FIXTURE_PATH} is missing; regenerate it with "
            "'PYTHONPATH=src python tests/test_golden_scenarios.py regenerate'"
        )
    return json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def fixture() -> dict:
    return load_fixture()


@pytest.mark.golden
def test_fixture_matches_the_current_grid(fixture):
    """Adding/removing presets, styles or modes must force a regeneration."""
    expected = {cell_key(*cell) for cell in golden_cells()}
    expected |= {cache_cell_key(*cell) for cell in cache_golden_cells()}
    assert set(fixture["cells"]) == expected, (
        "golden fixture covers a different grid than the code; regenerate it "
        "(see TESTING.md) and review the diff"
    )
    assert fixture["instructions"] == GOLDEN_INSTRUCTIONS
    assert fixture["warmup_instructions"] == GOLDEN_WARMUP
    assert fixture["budget_kib"] == GOLDEN_BUDGET_KIB


@pytest.mark.golden
@pytest.mark.parametrize(
    "preset,style,mode",
    golden_cells(),
    ids=[cell_key(*cell) for cell in golden_cells()],
)
def test_golden_cell_is_bit_exact(fixture, preset, style, mode):
    pinned = fixture["cells"][cell_key(preset, style, mode)]
    actual = compute_cell(preset, style, mode)
    assert actual == pinned, (
        f"scenario results drifted for {cell_key(preset, style, mode)}; if the "
        "change is intentional, regenerate tests/golden/scenario_golden.json "
        "(see TESTING.md) and commit the new fixture with your change"
    )


@pytest.mark.golden
@pytest.mark.parametrize(
    "preset,style,cache_mode",
    cache_golden_cells(),
    ids=[cache_cell_key(*cell) for cell in cache_golden_cells()],
)
def test_cache_golden_cell_is_bit_exact(fixture, preset, style, cache_mode):
    pinned = fixture["cells"][cache_cell_key(preset, style, cache_mode)]
    actual = compute_cache_cell(preset, style, cache_mode)
    assert actual == pinned, (
        f"hierarchy results drifted for {cache_cell_key(preset, style, cache_mode)}; "
        "if the change is intentional, regenerate tests/golden/scenario_golden.json "
        "(see TESTING.md) and commit the new fixture with your change"
    )


def regenerate() -> None:  # pragma: no cover - developer tool
    """Recompute every golden cell and rewrite the fixture."""
    cells = {}
    for preset, style, mode in golden_cells():
        key = cell_key(preset, style, mode)
        print(f"  {key} ...", flush=True)
        cells[key] = compute_cell(preset, style, mode)
    for preset, style, cache_mode in cache_golden_cells():
        key = cache_cell_key(preset, style, cache_mode)
        print(f"  {key} ...", flush=True)
        cells[key] = compute_cache_cell(preset, style, cache_mode)
    fixture = {
        "format": 1,
        "instructions": GOLDEN_INSTRUCTIONS,
        "warmup_instructions": GOLDEN_WARMUP,
        "budget_kib": GOLDEN_BUDGET_KIB,
        "cells": cells,
    }
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(json.dumps(fixture, indent=1, sort_keys=True) + "\n",
                            encoding="utf-8")
    print(f"wrote {len(cells)} cells to {FIXTURE_PATH}")


if __name__ == "__main__":  # pragma: no cover - developer tool
    if len(sys.argv) == 2 and sys.argv[1] == "regenerate":
        regenerate()
    else:
        print(__doc__)
        raise SystemExit(f"usage: {sys.argv[0]} regenerate")

"""Tests for the calibrated SRAM energy/latency model and the Table V report."""

from __future__ import annotations

import pytest

from repro.common.errors import EnergyModelError
from repro.energy.btb_energy import BTBEnergyModel
from repro.energy.sram import SRAMArray, sram_access_latency_ns, sram_read_energy_pj


class TestSRAMArray:
    def test_invalid_geometry_rejected(self):
        with pytest.raises(EnergyModelError):
            SRAMArray("bad", 0, 64)

    def test_calibration_point_conventional(self):
        array = SRAMArray("conv", 1856, 64, associativity=8)
        assert array.read_energy_pj() == pytest.approx(13.2, abs=0.3)
        assert array.write_energy_pj() == pytest.approx(25.2, abs=0.5)
        assert array.access_latency_ns() == pytest.approx(0.36, abs=0.02)

    def test_calibration_point_pdede_page(self):
        array = SRAMArray("page", 512, 20, associativity=16)
        assert array.read_energy_pj() == pytest.approx(0.9, abs=0.3)
        assert array.access_latency_ns() == pytest.approx(0.13, abs=0.03)

    def test_monotonic_in_capacity(self):
        small = SRAMArray("s", 512, 64, associativity=8)
        large = SRAMArray("l", 8192, 64, associativity=8)
        assert large.read_energy_pj() > small.read_energy_pj()
        assert large.access_latency_ns() > small.access_latency_ns()

    def test_floors_for_tiny_arrays(self):
        tiny = SRAMArray("region", 4, 22, associativity=4)
        assert tiny.read_energy_pj() > 0
        assert tiny.write_energy_pj() > 0
        assert tiny.access_latency_ns() > 0

    def test_search_energy_scales_with_entries(self):
        array = SRAMArray("page", 512, 20, associativity=16)
        assert array.search_energy_pj(16) == pytest.approx(6.2, abs=0.3)
        assert array.search_energy_pj(512) > array.search_energy_pj(16)

    def test_wrappers(self):
        assert sram_read_energy_pj(1856, 64, 8) == pytest.approx(13.2, abs=0.3)
        assert sram_access_latency_ns(1856, 64, 8) == pytest.approx(0.36, abs=0.02)


class TestBTBEnergyModel:
    def test_per_access_ordering_matches_table5(self):
        model = BTBEnergyModel(14.5)
        conv = model.design_energy("conventional").structures["main"]
        pdede = model.design_energy("pdede").structures["main"]
        btbx = model.design_energy("btbx").structures["main"]
        assert conv.read_energy_pj > pdede.read_energy_pj
        assert conv.read_energy_pj > btbx.read_energy_pj
        assert conv.write_energy_pj > btbx.write_energy_pj

    def test_latency_analysis_section6e(self):
        model = BTBEnergyModel(14.5)
        conv = model.design_energy("conventional").lookup_latency_ns
        pdede = model.design_energy("pdede").lookup_latency_ns
        btbx = model.design_energy("btbx").lookup_latency_ns
        # PDede pays the serial Main+Page access; BTB-X is the fastest.
        assert pdede > conv > btbx
        assert pdede == pytest.approx(0.47, abs=0.05)
        assert btbx == pytest.approx(0.33, abs=0.03)

    def test_totals_scale_with_access_counts(self):
        model = BTBEnergyModel(14.5)
        counts = {"reads.main": 1.6e8, "writes.main": 4.36e6}
        report = model.design_energy("conventional", counts)
        # 1.6e8 reads x 13.2 pJ + 4.36e6 writes x 25.2 pJ ~= 2232 uJ (Table V).
        assert report.total_energy_uj == pytest.approx(2232, rel=0.05)

    def test_report_covers_all_three_designs(self):
        report = BTBEnergyModel(14.5).report()
        assert set(report.designs) == {"conventional", "pdede", "btbx"}

    def test_energy_from_simulated_btb(self):
        from repro.btb.storage import make_btb_for_budget
        from repro.common.config import BTBStyle
        from repro.isa.branch import BranchType
        from repro.isa.instruction import Instruction

        btb = make_btb_for_budget(BTBStyle.BTBX, 14.5)
        branch = Instruction.branch(0x401000, BranchType.CONDITIONAL, True, 0x401100)
        btb.update(branch)
        btb.lookup(branch.pc)
        report = BTBEnergyModel(14.5).energy_from_btb(btb)
        assert report.total_energy_uj > 0

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError):
            BTBEnergyModel(14.5).design_energy("mystery")

"""Lifecycle and exactness tests for the pipelined chunk composer.

The pipeline moves the SoA decode of scheduled chunks onto a producer thread;
these tests pin the three contracts that make that safe: chunk order is the
schedule order (bit-exactness of the simulated stream), producer failures
surface at the consumer with the thread joined, and close() joins the thread
from any state -- including a producer blocked on the bounded queue, which is
what a cancelled or failed sweep job looks like.
"""

from __future__ import annotations

import threading
import time

import pytest

pytest.importorskip("numpy")

from repro.common.config import ASIDMode, BTBStyle
from repro.scenarios import pipeline as pipeline_module
from repro.scenarios.compose import TraceComposer
from repro.scenarios.pipeline import ChunkPipeline
from repro.scenarios.run import execute_scenario
from repro.scenarios.spec import ScenarioSpec, TenantSpec
from repro.traces.store import TraceStore


def _composer(instructions: int = 4_000) -> TraceComposer:
    spec = ScenarioSpec(
        name="pipeline-test",
        tenants=(
            TenantSpec(name="a", workload="server_001"),
            TenantSpec(name="b", workload="client_001"),
        ),
        quantum_instructions=500,
    )
    store = TraceStore(max_traces=8)
    traces = {w: store.get(w, instructions) for w in set(spec.workloads)}
    return TraceComposer(spec, traces)


def _drain_threads(before: set[int], timeout: float = 5.0) -> None:
    """Wait for any pipeline threads not in ``before`` to exit."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        alive = [
            t
            for t in threading.enumerate()
            if t.ident not in before and t.name == "chunk-pipeline"
        ]
        if not alive:
            return
        time.sleep(0.01)
    raise AssertionError(f"chunk-pipeline threads leaked: {alive}")


class TestChunkPipeline:
    def test_preserves_schedule_exactly(self):
        composer = _composer()
        expected = list(composer.stream_batches(6_000))
        produced = list(ChunkPipeline(_composer().stream_batches(6_000)))
        assert [(c.asid, c.tenant, c.start, c.stop) for c in produced] == [
            (c.asid, c.tenant, c.start, c.stop) for c in expected
        ]

    def test_exhaustion_joins_thread(self):
        before = {t.ident for t in threading.enumerate()}
        pipeline = ChunkPipeline(_composer().stream_batches(2_000))
        list(pipeline)
        assert not pipeline._thread.is_alive()
        _drain_threads(before)

    def test_decode_exception_propagates_and_joins(self, monkeypatch):
        """An injected decode failure reaches the consumer; no thread leaks."""

        def explode(trace):
            raise RuntimeError("injected decode failure")

        monkeypatch.setattr(pipeline_module, "trace_arrays", explode)
        pipeline = ChunkPipeline(_composer().stream_batches(2_000))
        with pytest.raises(RuntimeError, match="injected decode failure"):
            list(pipeline)
        assert not pipeline._thread.is_alive()
        pipeline.close()  # idempotent after failure

    def test_close_unblocks_full_queue(self):
        """close() joins a producer stalled on the bounded queue (cancellation)."""
        pipeline = ChunkPipeline(_composer().stream_batches(50_000), depth=1)
        deadline = time.monotonic() + 5.0
        while pipeline._queue.empty() and time.monotonic() < deadline:
            time.sleep(0.01)
        pipeline.close()
        assert not pipeline._thread.is_alive()
        # After close the iterator terminates instead of blocking.
        assert list(pipeline) == []

    def test_close_before_consuming_anything(self):
        pipeline = ChunkPipeline(_composer().stream_batches(10_000))
        pipeline.close()
        assert not pipeline._thread.is_alive()

    def test_execute_scenario_joins_on_failure(self, monkeypatch):
        """A failing numpy scenario run leaves no producer thread behind."""
        before = {t.ident for t in threading.enumerate()}

        def explode(trace):
            raise RuntimeError("injected decode failure")

        monkeypatch.setattr(pipeline_module, "trace_arrays", explode)
        with pytest.raises(RuntimeError, match="injected decode failure"):
            execute_scenario(
                "consolidated_server",
                style=BTBStyle.CONVENTIONAL,
                asid_mode=ASIDMode.FLUSH,
                instructions=2_000,
                backend="numpy",
            )
        _drain_threads(before)

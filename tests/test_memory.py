"""Tests for the cache model and the memory hierarchy."""

from __future__ import annotations

from repro.common.config import ASIDMode, CacheConfig, MachineConfig
from repro.memory.cache import Cache, SetAssociativeCache
from repro.memory.hierarchy import MemoryHierarchy


def _small_cache(size=4096, assoc=4, line=64, mshrs=2) -> Cache:
    return Cache(CacheConfig("T", size, assoc, line_size=line, hit_latency=3, mshrs=mshrs))


class TestCache:
    def test_miss_then_hit_after_fill(self):
        cache = _small_cache()
        addr = 0x1234
        assert not cache.access(addr).hit
        cache.fill(addr)
        assert cache.access(addr).hit
        assert cache.contains(addr)

    def test_block_granularity(self):
        cache = _small_cache()
        cache.fill(0x1000)
        assert cache.access(0x103F).hit  # same 64-byte block
        assert not cache.access(0x1040).hit

    def test_lru_eviction(self):
        cache = _small_cache(size=4 * 64, assoc=4)  # a single set
        blocks = [i * 64 for i in range(5)]
        for block in blocks:
            cache.access(block)
            cache.fill(block)
        assert not cache.contains(blocks[0])
        assert cache.contains(blocks[4])

    def test_eviction_returns_victim_address(self):
        cache = _small_cache(size=4 * 64, assoc=4)
        for i in range(4):
            cache.fill(i * 64 * cache.num_sets)
        evicted = cache.fill(4 * 64 * cache.num_sets)
        assert evicted is not None

    def test_fill_same_block_twice_no_eviction(self):
        cache = _small_cache()
        cache.fill(0x2000)
        assert cache.fill(0x2000) is None
        assert cache.occupancy() == 1

    def test_dirty_writeback_counted(self):
        cache = _small_cache(size=1 * 64, assoc=1)
        cache.fill(0x0, dirty=True)
        cache.fill(0x10000)
        assert cache.stats.get("writebacks") == 1

    def test_prefetched_line_marked_useful_on_demand_hit(self):
        cache = _small_cache()
        cache.fill(0x3000, prefetched=True)
        cache.access(0x3000)
        assert cache.stats.get("useful_prefetches") == 1

    def test_mshr_limit(self):
        cache = _small_cache(mshrs=2)
        assert cache.note_outstanding(0x1000)
        assert cache.note_outstanding(0x2000)
        assert not cache.note_outstanding(0x3000)
        assert cache.note_outstanding(0x1000)  # merge with existing entry
        cache.fill(0x1000)
        assert cache.note_outstanding(0x3000)

    def test_invalidate_all(self):
        cache = _small_cache()
        cache.fill(0x4000)
        cache.invalidate_all()
        assert not cache.contains(0x4000)
        assert cache.occupancy() == 0


class TestCacheASIDPolicy:
    """ASID tagging and set partitioning on a single level."""

    def test_cache_is_the_set_associative_cache(self):
        # The historical name must keep working.
        assert Cache is SetAssociativeCache

    def test_tagged_lines_do_not_cross_address_spaces(self):
        cache = _small_cache()
        cache.fill(0x1000)
        assert cache.access(0x1000).hit
        cache.set_active_asid(1)
        assert not cache.access(0x1000).hit
        assert not cache.contains(0x1000)
        cache.fill(0x1000)
        assert cache.access(0x1000).hit
        cache.set_active_asid(0)
        assert cache.access(0x1000).hit  # ASID 0's line survived untouched

    def test_asid_zero_is_the_identity_color(self):
        """With ASID 0 active the tagged cache is bit-identical to the
        untagged one: same hits, same evictions, same victims."""
        plain = _small_cache(size=4 * 64, assoc=4)
        tagged = _small_cache(size=4 * 64, assoc=4)
        tagged.set_active_asid(0)
        addresses = [i * 64 for i in (0, 1, 2, 3, 4, 1, 0, 5)]
        for addr in addresses:
            left = plain.access(addr).hit
            right = tagged.access(addr).hit
            assert left == right
            if not left:
                assert plain.fill(addr) == tagged.fill(addr)

    def test_partitioned_sets_isolate_tenants(self):
        cache = _small_cache(size=8 * 64, assoc=1)  # 8 direct-mapped sets
        cache.configure_partitions((1, 1))
        assert cache.partition_set_counts() == [4, 4]
        # Tenant 0 fills its slice full of blocks; tenant 1's fills must not
        # evict any of them (disjoint set ranges).
        for i in range(4):
            cache.fill(i * 64)
        cache.set_active_asid(1)
        for i in range(8):
            cache.fill((100 + i) * 64)
        cache.set_active_asid(0)
        for i in range(4):
            assert cache.contains(i * 64), f"tenant 0 lost block {i} to tenant 1"

    def test_partition_reconfiguration_invalidates(self):
        cache = _small_cache()
        cache.fill(0x2000)
        cache.configure_partitions((1, 1))
        assert not cache.contains(0x2000)
        cache.fill(0x2000)
        cache.configure_partitions(None)
        assert not cache.contains(0x2000)

    def test_too_small_cache_falls_back_to_sharing(self):
        cache = _small_cache(size=2 * 64, assoc=1)  # 2 sets
        cache.configure_partitions((1, 1, 1))
        assert cache.partition_set_counts() is None  # shared (still tagged)

    def test_eviction_reports_raw_victim_address_under_tagging(self):
        cache = _small_cache(size=1 * 64, assoc=1)
        cache.set_active_asid(3)
        cache.fill(0x40)
        evicted = cache.fill(0x40 + 64 * cache.num_sets)
        assert evicted == 0x40  # the raw block address, not the colored tag


class TestHierarchyASIDModes:
    """Context-switch behaviour of the whole hierarchy."""

    @staticmethod
    def _hierarchy(mode: ASIDMode | None) -> MemoryHierarchy:
        return MemoryHierarchy(MachineConfig(cache_asid_mode=mode))

    def test_legacy_mode_ignores_switches(self):
        hierarchy = self._hierarchy(None)
        hierarchy.fetch(0x400000)
        hierarchy.context_switch(1)
        assert hierarchy.fetch(0x400000).l1i_hit  # false sharing, as before

    def test_flush_mode_invalidates_every_level(self):
        hierarchy = self._hierarchy(ASIDMode.FLUSH)
        hierarchy.fetch(0x400000)
        hierarchy.context_switch(1)
        assert not hierarchy.l1i.contains(0x400000)
        assert not hierarchy.l2.contains(0x400000)
        assert not hierarchy.llc.contains(0x400000)
        result = hierarchy.fetch(0x400000)
        assert result.level == "DRAM"

    def test_tagged_mode_keeps_lines_per_address_space(self):
        hierarchy = self._hierarchy(ASIDMode.TAGGED)
        hierarchy.fetch(0x400000)
        hierarchy.context_switch(1)
        # Tenant 1 misses on the same VA (no false sharing)...
        assert not hierarchy.fetch(0x400000).l1i_hit
        hierarchy.context_switch(0)
        # ...while tenant 0's line survived the switches.
        assert hierarchy.fetch(0x400000).l1i_hit

    def test_repeated_switch_to_same_asid_is_a_noop(self):
        hierarchy = self._hierarchy(ASIDMode.FLUSH)
        hierarchy.context_switch(2)
        hierarchy.fetch(0x500000)
        hierarchy.context_switch(2)
        assert hierarchy.fetch(0x500000).l1i_hit
        assert hierarchy.stats.get("context_switches") == 1

    def test_partition_report_covers_every_level(self):
        hierarchy = self._hierarchy(ASIDMode.PARTITIONED)
        hierarchy.configure_partitions((3, 1))
        report = hierarchy.partition_report()
        assert set(report) == {"l1i", "l1d", "l2", "llc"}
        for level, counts in report.items():
            assert len(counts) == 2
            assert counts[0] > counts[1], (level, counts)  # weight-proportional
        assert self._hierarchy(ASIDMode.TAGGED).partition_report() == {}


class TestHierarchy:
    def test_first_fetch_misses_to_dram(self):
        hierarchy = MemoryHierarchy(MachineConfig())
        result = hierarchy.fetch(0x400000)
        assert not result.l1i_hit
        assert result.level == "DRAM"
        assert result.latency == hierarchy.memory_latency

    def test_refetch_hits_l1i(self):
        hierarchy = MemoryHierarchy(MachineConfig())
        hierarchy.fetch(0x400000)
        result = hierarchy.fetch(0x400000)
        assert result.l1i_hit
        assert result.latency == 0

    def test_l1i_eviction_falls_back_to_l2(self):
        hierarchy = MemoryHierarchy(MachineConfig())
        target = 0x400000
        hierarchy.fetch(target)
        # Touch enough distinct blocks mapping to the same L1-I set to evict it.
        sets = hierarchy.l1i.num_sets
        for i in range(1, hierarchy.l1i.associativity + 2):
            hierarchy.fetch(target + i * sets * 64)
        result = hierarchy.fetch(target)
        assert not result.l1i_hit
        assert result.level == "L2"
        assert result.latency == hierarchy.l2.hit_latency

    def test_prefetch_fills_l1i(self):
        hierarchy = MemoryHierarchy(MachineConfig())
        hierarchy.prefetch(0x500000)
        result = hierarchy.fetch(0x500000)
        assert result.l1i_hit

    def test_redundant_prefetch_detected(self):
        hierarchy = MemoryHierarchy(MachineConfig())
        hierarchy.fetch(0x600000)
        result = hierarchy.prefetch(0x600000)
        assert result.l1i_hit
        assert hierarchy.stats.get("prefetch.redundant") == 1

    def test_prefetch_dropped_when_mshrs_full(self):
        machine = MachineConfig()
        hierarchy = MemoryHierarchy(machine)
        dropped = 0
        for i in range(machine.l1i.mshrs + 4):
            result = hierarchy.prefetch(0x700000 + i * 64)
            if result.level == "dropped":
                dropped += 1
        assert dropped == 0 or hierarchy.stats.get("prefetch.dropped") == dropped

    def test_data_access_path(self):
        hierarchy = MemoryHierarchy(MachineConfig())
        first = hierarchy.data_access(0x800000)
        second = hierarchy.data_access(0x800000)
        assert first.latency > 0
        assert second.latency == 0

    def test_invalidate_all(self):
        hierarchy = MemoryHierarchy(MachineConfig())
        hierarchy.fetch(0x900000)
        hierarchy.invalidate_all()
        assert not hierarchy.l1i.contains(0x900000)
        assert not hierarchy.l2.contains(0x900000)

    def test_line_size(self):
        assert MemoryHierarchy(MachineConfig()).line_size() == 64

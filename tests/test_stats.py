"""Unit tests for the statistics registry."""

from __future__ import annotations

from repro.common.stats import Distribution, Stats, merge_all


class TestCounters:
    def test_missing_counter_reads_zero(self):
        assert Stats().get("nothing") == 0.0

    def test_inc_and_add(self):
        stats = Stats()
        stats.inc("hits")
        stats.inc("hits", 4)
        stats.add("latency", 2.5)
        assert stats.get("hits") == 5
        assert stats.get("latency") == 2.5

    def test_set_overwrites(self):
        stats = Stats()
        stats.inc("x", 10)
        stats.set("x", 3)
        assert stats.get("x") == 3

    def test_ratio_and_per_kilo(self):
        stats = Stats()
        stats.inc("misses", 5)
        stats.inc("instructions", 1000)
        assert stats.ratio("misses", "instructions") == 0.005
        assert stats.per_kilo("misses", "instructions") == 5.0

    def test_ratio_zero_denominator(self):
        assert Stats().ratio("a", "b") == 0.0

    def test_merge(self):
        a, b = Stats(), Stats()
        a.inc("hits", 2)
        b.inc("hits", 3)
        b.inc("misses", 1)
        a.merge(b)
        assert a.get("hits") == 5
        assert a.get("misses") == 1

    def test_merge_all(self):
        parts = []
        for i in range(3):
            s = Stats()
            s.inc("n", i + 1)
            parts.append(s)
        assert merge_all(parts).get("n") == 6

    def test_iteration_and_len(self):
        stats = Stats()
        stats.inc("b")
        stats.inc("a")
        assert len(stats) == 2
        assert [name for name, _ in stats] == ["a", "b"]


class TestGroups:
    def test_group_prefixes_names(self):
        stats = Stats()
        group = stats.group("btb")
        group.inc("hits")
        assert stats.get("btb.hits") == 1
        assert group.get("hits") == 1

    def test_nested_groups(self):
        stats = Stats()
        sub = stats.group("core").subgroup("fetch")
        sub.inc("stalls", 7)
        assert stats.get("core.fetch.stalls") == 7


class TestDistribution:
    def test_observe_and_summary(self):
        dist = Distribution()
        for value in (1, 2, 2, 10):
            dist.observe(value)
        assert dist.count == 4
        assert dist.minimum == 1
        assert dist.maximum == 10
        assert dist.mean == 3.75

    def test_cumulative_fraction(self):
        dist = Distribution()
        for value in (1, 2, 3, 4):
            dist.observe(value)
        assert dist.cumulative_fraction(2) == 0.5
        assert dist.cumulative_fraction(10) == 1.0

    def test_empty_distribution(self):
        dist = Distribution()
        assert dist.mean == 0.0
        assert dist.cumulative_fraction(5) == 0.0

    def test_merge(self):
        a, b = Distribution(), Distribution()
        a.observe(1)
        b.observe(5)
        a.merge(b)
        assert a.count == 2
        assert a.maximum == 5

    def test_stats_observe_creates_distribution(self):
        stats = Stats()
        stats.observe("offsets", 6)
        stats.observe("offsets", 20)
        assert stats.distribution("offsets").count == 2

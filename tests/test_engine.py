"""Tests for the parallel experiment engine, its caches and the CLI plumbing.

Covers the PR's contract points: serial and parallel execution produce
bit-identical `SimulationResult` fields, the on-disk cache turns reruns into
zero new simulations (and misses when any config field changes), and the
bounded trace store actually bounds memory.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cli import main, make_engine, resolve_scale, run_all, run_experiment
from repro.common.config import BTBStyle
from repro.experiments.config import SMOKE_SCALE
from repro.experiments.engine import (
    ExperimentEngine,
    ResultCache,
    SimJob,
    _RESULT_FIELDS,
    get_active_engine,
    grid_jobs,
    set_active_engine,
    use_engine,
)
from repro.experiments.runner import clear_trace_cache, evaluation_traces, simulate_grid
from repro.common.errors import ConfigurationError
from repro.traces.store import TraceStore, default_store


@pytest.fixture(autouse=True)
def _fresh_engine_state():
    set_active_engine(None)
    yield
    set_active_engine(None)
    clear_trace_cache()


def _small_jobs(styles=(BTBStyle.CONVENTIONAL, BTBStyle.BTBX), budgets=(0.90625, 3.625)):
    return [
        SimJob(
            workload=workload,
            instructions=8_000,
            warmup_instructions=2_000,
            style=style,
            fdip_enabled=True,
            budget_kib=budget,
        )
        for workload in ("client_001", "server_009")
        for style in styles
        for budget in budgets
    ]


def _result_fields(outcome):
    return {name: getattr(outcome.result, name) for name in _RESULT_FIELDS}


class TestSimJob:
    def test_hash_is_stable(self):
        job = _small_jobs()[0]
        assert job.config_hash() == dataclasses.replace(job).config_hash()

    def test_hash_changes_with_every_config_field(self):
        base = _small_jobs()[0]
        variants = [
            dataclasses.replace(base, workload="server_010"),
            dataclasses.replace(base, instructions=9_000),
            dataclasses.replace(base, warmup_instructions=1_000),
            dataclasses.replace(base, style=BTBStyle.PDEDE),
            dataclasses.replace(base, fdip_enabled=False),
            dataclasses.replace(base, budget_kib=14.5),
            dataclasses.replace(base, companion_divisor=32),
        ]
        hashes = {job.config_hash() for job in variants}
        assert len(hashes) == len(variants)
        assert base.config_hash() not in hashes

    def test_requires_budget_or_geometry(self):
        with pytest.raises(ConfigurationError):
            SimJob(
                workload="client_001",
                instructions=1_000,
                warmup_instructions=0,
                style=BTBStyle.BTBX,
                fdip_enabled=True,
            )

    def test_grid_jobs_cover_the_grid(self):
        traces = evaluation_traces(SMOKE_SCALE, suites=("ipc1_client",))
        jobs = grid_jobs(
            traces,
            (BTBStyle.CONVENTIONAL, BTBStyle.BTBX),
            (0.90625, 1.8125),
            (False, True),
            instructions=SMOKE_SCALE.instructions,
            warmup_instructions=SMOKE_SCALE.warmup_instructions,
        )
        assert len(jobs) == len(traces) * 2 * 2 * 2
        assert len({job.config_hash() for job in jobs}) == len(jobs)


class TestDeterminism:
    def test_serial_and_parallel_results_are_identical(self):
        jobs = _small_jobs()
        serial = ExperimentEngine(workers=1).run_jobs(jobs)
        parallel = ExperimentEngine(workers=2).run_jobs(jobs)
        for left, right in zip(serial, parallel):
            assert _result_fields(left) == _result_fields(right)

    def test_simulate_grid_matches_across_worker_counts(self):
        traces = evaluation_traces(SMOKE_SCALE, suites=("ipc1_client",))
        kwargs = dict(
            styles=(BTBStyle.BTBX,), budget_kib=1.8125, fdip_enabled=True, scale=SMOKE_SCALE
        )
        serial = simulate_grid(traces, engine=ExperimentEngine(workers=1), **kwargs)
        parallel = simulate_grid(traces, engine=ExperimentEngine(workers=3), **kwargs)
        for trace in traces:
            left = serial[BTBStyle.BTBX][trace.name]
            right = parallel[BTBStyle.BTBX][trace.name]
            assert left.to_dict() == right.to_dict()

    def test_access_counts_cross_process(self):
        job = _small_jobs()[0]
        jobs = [job, dataclasses.replace(job, workload="server_009")]
        serial = ExperimentEngine(workers=1).run_jobs(jobs)
        parallel = ExperimentEngine(workers=2).run_jobs(jobs)
        assert serial[0].access_counts
        for left, right in zip(serial, parallel):
            assert left.access_counts == right.access_counts


class TestResultCache:
    def test_cache_miss_then_hit(self, tmp_path):
        jobs = _small_jobs(styles=(BTBStyle.BTBX,), budgets=(0.90625,))
        first = ExperimentEngine(workers=1, cache_dir=tmp_path)
        warm_outcomes = first.run_jobs(jobs)
        assert first.stats()["executed"] == len(jobs)

        second = ExperimentEngine(workers=1, cache_dir=tmp_path)
        cold_outcomes = second.run_jobs(jobs)
        assert second.stats() == {
            "submitted": len(jobs),
            "executed": 0,
            "memo_hits": 0,
            "disk_hits": len(jobs),
            "instructions_simulated": 0,
        }
        for left, right in zip(warm_outcomes, cold_outcomes):
            assert _result_fields(left) == _result_fields(right)

    def test_config_change_invalidates(self, tmp_path):
        job = _small_jobs()[0]
        ExperimentEngine(workers=1, cache_dir=tmp_path).run_jobs([job])

        changed = dataclasses.replace(job, budget_kib=14.5)
        engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
        engine.run_jobs([changed])
        assert engine.stats()["disk_hits"] == 0
        assert engine.stats()["executed"] == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        job = _small_jobs()[0]
        cache = ResultCache(tmp_path)
        (tmp_path / f"{job.config_hash()}.json").write_text("{not json")
        assert cache.get(job) is None

    def test_table5_cells_shared_with_other_figures(self):
        """Access counts ride in every payload, so grids share cache cells."""
        job = _small_jobs(styles=(BTBStyle.BTBX,), budgets=(14.5,))[0]
        engine = ExperimentEngine(workers=1)
        first = engine.run_jobs([job])
        second = engine.run_jobs([job])
        assert engine.stats()["executed"] == 1
        assert first[0].access_counts and second[0].access_counts

    def test_memo_dedupes_within_one_engine(self):
        job = _small_jobs()[0]
        engine = ExperimentEngine(workers=1)
        engine.run_jobs([job, job])
        engine.run_jobs([job])
        stats = engine.stats()
        assert stats["executed"] == 1
        assert stats["memo_hits"] >= 1

    def test_warm_cache_rerun_of_fig11_runs_zero_simulations(self, tmp_path):
        """Acceptance: a repeated sweep with a warm cache simulates nothing."""
        first = make_engine(workers=2, cache_dir=tmp_path)
        result = run_experiment("fig11_sweep", "smoke", engine=first)
        assert first.stats()["executed"] > 0

        rerun_engine = make_engine(workers=2, cache_dir=tmp_path)
        rerun = run_experiment("fig11_sweep", "smoke", engine=rerun_engine)
        assert rerun_engine.stats()["executed"] == 0
        assert rerun_engine.stats()["disk_hits"] == rerun_engine.stats()["submitted"]
        assert rerun == result


class TestTraceStore:
    def test_bounded_eviction(self):
        store = TraceStore(max_traces=2)
        for name in ("client_001", "client_002", "client_003"):
            store.get(name, 2_000)
        assert len(store) == 2
        assert ("client_001", 2_000) not in store
        assert ("client_003", 2_000) in store

    def test_hit_returns_same_object(self):
        store = TraceStore(max_traces=4)
        first = store.get("client_001", 2_000)
        second = store.get("client_001", 2_000)
        assert first is second
        assert store.hits == 1 and store.misses == 1

    def test_lru_touch_protects_recently_used(self):
        store = TraceStore(max_traces=2)
        store.get("client_001", 2_000)
        store.get("client_002", 2_000)
        store.get("client_001", 2_000)  # refresh 001 so 002 is the LRU victim
        store.get("client_003", 2_000)
        assert ("client_001", 2_000) in store
        assert ("client_002", 2_000) not in store

    def test_clear_trace_cache_bounds_memory(self):
        evaluation_traces(SMOKE_SCALE, suites=("ipc1_client",))
        assert len(default_store()) > 0
        clear_trace_cache()
        assert len(default_store()) == 0

    def test_clear_trace_cache_also_clears_active_engine_memo(self):
        engine = get_active_engine()
        engine.run_jobs([_small_jobs()[0]])
        assert engine._memo
        clear_trace_cache()
        assert not engine._memo

    def test_non_canonical_trace_bypasses_the_caches(self):
        from repro.experiments.runner import simulate
        from repro.workloads.execution import generate_trace
        from repro.workloads.spec import server_spec

        # A custom-named trace must never be served from (or poison) the
        # name-keyed caches, even when a canonical-looking scale is used.
        custom = generate_trace(server_spec("not_a_suite_workload", seed=5), 8_000)
        engine = ExperimentEngine(workers=1)
        with use_engine(engine):
            scale = dataclasses.replace(SMOKE_SCALE, instructions=8_000)
            result = simulate(custom, BTBStyle.BTBX, 1.8125, True, scale)
        assert result.workload == "not_a_suite_workload"
        assert engine.stats()["submitted"] == 0

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            TraceStore(max_traces=0)


class TestActiveEngine:
    def test_default_engine_is_serial(self):
        engine = get_active_engine()
        assert engine.workers == 1
        assert engine.cache is None

    def test_use_engine_scopes_and_restores(self):
        scoped = ExperimentEngine(workers=2)
        with use_engine(scoped) as active:
            assert active is scoped
            assert get_active_engine() is scoped
        assert get_active_engine() is not scoped


class TestCLI:
    def test_run_experiment_honors_repro_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        result = run_experiment("fig04_offsets", "quick")
        assert result["scale"] == "smoke"

    def test_resolve_scale_falls_back_to_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert resolve_scale("smoke") is SMOKE_SCALE

    def test_run_all_shares_the_engine(self, monkeypatch):
        # A two-driver registry keeps this an engine-sharing test, not a rerun
        # of every experiment at smoke scale.
        monkeypatch.setattr(
            "repro.cli.EXPERIMENTS",
            {
                "table3_storage": "repro.experiments.table3_storage",
                "fig09_mpki": "repro.experiments.fig09_mpki",
            },
        )
        engine = ExperimentEngine(workers=1)
        summary = run_all("smoke", engine=engine)
        assert set(summary["results"]) == {"table3_storage", "fig09_mpki"}
        assert summary["engine"]["executed"] > 0
        assert summary["total_s"] > 0

    def test_main_run_all_writes_timings(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setattr(
            "repro.cli.EXPERIMENTS",
            {"table4_capacity": "repro.experiments.table4_capacity"},
        )
        timings = tmp_path / "BENCH_run_all.json"
        exit_code = main(
            ["run-all", "--scale", "smoke", "--workers", "2", "--timings", str(timings)]
        )
        assert exit_code == 0
        assert timings.exists()
        assert "run-all:" in capsys.readouterr().out

    def test_main_run_accepts_engine_flags(self, tmp_path, capsys):
        exit_code = main(
            [
                "run",
                "fig04_offsets",
                "--scale",
                "smoke",
                "--workers",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        assert exit_code == 0
        assert "Figure 4" in capsys.readouterr().out

"""Property suite: the batched SoA decode/compose paths mirror the scalar ones.

The batched backend never touches :class:`Instruction` objects on its fast
paths -- it works from structure-of-arrays views (:mod:`repro.traces.batch`)
and contiguous scheduling chunks (:meth:`TraceComposer.stream_batches`).
These properties pin the two pairs of twins together over generated inputs:

* a binary trace decoded wholesale by :func:`read_binary_trace_arrays` must
  carry exactly the records :func:`iter_binary_trace` yields one at a time;
* expanding :meth:`TraceComposer.stream_batches` chunk-by-chunk must replay
  the identical ``(asid, tenant, instruction)`` sequence as
  :meth:`TraceComposer.stream` -- across policies, weights, quanta, wrapping
  cursors and shared-footprint remapping.

The array half needs numpy; the module skips on the numpy-free leg (where
the scalar iterators remain covered by the trace and scenario suites).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction
from repro.scenarios.compose import TraceComposer
from repro.scenarios.spec import ScenarioSpec, TenantSpec
from repro.traces.batch import HAVE_NUMPY, read_binary_trace_arrays, trace_arrays
from repro.traces.binary_io import _BRANCH_TYPE_INDEX, iter_binary_trace, write_binary_trace
from repro.traces.trace import Trace

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy backend not available")


@st.composite
def instructions_strategy(draw, min_size: int = 1, max_size: int = 50):
    """A legal instruction sequence (sizes fit the binary format's u8)."""
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    out = []
    for _ in range(count):
        branch_type = draw(st.sampled_from(list(BranchType)))
        if not branch_type.is_branch:
            taken = False
            target = 0
        elif branch_type.is_conditional:
            taken = draw(st.booleans())
            target = draw(st.integers(min_value=4, max_value=(1 << 48) - 1))
        else:
            taken = True
            target = draw(st.integers(min_value=4, max_value=(1 << 48) - 1))
        out.append(
            Instruction(
                pc=draw(st.integers(min_value=0, max_value=(1 << 48) - 1)),
                size=draw(st.sampled_from((1, 2, 4, 8))),
                branch_type=branch_type,
                taken=taken,
                target=target,
            )
        )
    return out


class TestBinaryDecodeRoundTrip:
    @given(instructions=instructions_strategy())
    @settings(max_examples=50, deadline=None)
    def test_array_decode_matches_scalar_iterator(self, instructions, tmp_path_factory):
        path = tmp_path_factory.mktemp("bin") / "trace.btbx"
        trace = Trace("prop", instructions, metadata={"origin": "hypothesis"})
        write_binary_trace(trace, path)

        scalar = list(iter_binary_trace(path))
        header, arrays = read_binary_trace_arrays(path)

        assert header["name"] == "prop"
        assert len(scalar) == len(arrays.pc)
        for i, inst in enumerate(scalar):
            assert int(arrays.pc[i]) == inst.pc
            assert int(arrays.target[i]) == inst.target
            assert int(arrays.size[i]) == inst.size
            assert int(arrays.branch_type[i]) == _BRANCH_TYPE_INDEX[inst.branch_type]
            assert bool(arrays.is_branch[i]) == inst.is_branch
            assert bool(arrays.taken[i]) == inst.taken

    def test_soa_view_matches_instruction_sequence(self):
        """trace_arrays() is the in-memory twin of the same SoA contract."""
        instructions = [
            Instruction.non_branch(0x1000),
            Instruction.branch(0x1004, BranchType.CONDITIONAL, True, 0x1010),
            Instruction.branch(0x1010, BranchType.CALL, True, 0x2000),
            Instruction.branch(0x2000, BranchType.RETURN, True, 0x1014),
        ]
        arrays = trace_arrays(Trace("soa", instructions))
        assert [int(pc) for pc in arrays.pc] == [inst.pc for inst in instructions]
        assert [bool(b) for b in arrays.is_branch] == [inst.is_branch for inst in instructions]
        assert [bool(t) for t in arrays.taken] == [inst.taken for inst in instructions]


@st.composite
def scenario_strategy(draw):
    """A small scenario spec plus per-workload traces and a stream length."""
    tenant_count = draw(st.integers(min_value=1, max_value=3))
    traces = {}
    tenants = []
    for i in range(tenant_count):
        workload = f"wl{i}"
        # Short traces force cursor wrapping; pcs stay word-aligned like the
        # generated workloads so shared-footprint remapping sees normal input.
        body = draw(instructions_strategy(min_size=3, max_size=40))
        traces[workload] = Trace(workload, body)
        tenants.append(
            TenantSpec(
                name=f"t{i}",
                workload=workload,
                weight=draw(st.integers(min_value=1, max_value=3)),
            )
        )
    spec = ScenarioSpec(
        name="prop",
        tenants=tuple(tenants),
        quantum_instructions=draw(st.integers(min_value=1, max_value=23)),
        policy=draw(st.sampled_from(("round_robin", "weighted"))),
        shared_fraction=draw(st.sampled_from((0.0, 0.5))),
    )
    total = draw(st.integers(min_value=1, max_value=150))
    return spec, traces, total


class TestComposeRoundTrip:
    @given(case=scenario_strategy())
    @settings(max_examples=50, deadline=None)
    def test_stream_batches_expands_to_stream(self, case):
        spec, traces, total = case

        scalar = list(TraceComposer(spec, traces).stream(total))

        expanded = []
        for chunk in TraceComposer(spec, traces).stream_batches(total):
            for inst in chunk.trace.instructions[chunk.start : chunk.stop]:
                expanded.append((chunk.asid, chunk.tenant, inst))

        assert expanded == scalar

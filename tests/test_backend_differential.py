"""Oracle-differential suite for the batched (numpy) execution backend.

The batched engine in :mod:`repro.core.batch` is a performance twin of the
scalar loops: same machine, same results, different schedule.  This suite
enforces that claim **bit-exactly** by replaying the entire golden grid --
all 38 scenario cells and all 8 cache-mode cells pinned in
``tests/golden/scenario_golden.json`` -- with ``backend="numpy"`` and
comparing against the same fixture the scalar oracle must match.  Fixture
equality on both backends is transitively python == numpy on every pinned
counter, without paying for two simulations per cell.

On top of the distilled golden counters, a small subset of cells is run on
*both* backends in-process and compared over the full raw statistics
registry, so divergence in an unpinned counter cannot hide.  The single
tolerated exception is ``fdip.prefetches_issued``: the batched engine
pre-executes a chunk's demand fetches front-to-back, which can make FDIP's
redundant-prefetch statistic observe slightly warmer L1-I state (documented
in :mod:`repro.core.batch`).  No reported metric reads it, and the suite
asserts it is the *only* raw counter allowed to differ.

Requires numpy; the module skips cleanly on the numpy-free CI leg, where the
scalar half of the equality is still enforced by the golden suite itself.
"""

from __future__ import annotations

import pytest

from repro.common.config import ASIDMode, BTBStyle
from repro.scenarios.run import execute_scenario
from repro.traces.batch import HAVE_NUMPY

from test_golden_scenarios import (
    GOLDEN_BUDGET_KIB,
    GOLDEN_INSTRUCTIONS,
    GOLDEN_WARMUP,
    cache_cell_key,
    cache_golden_cells,
    cell_key,
    compute_cache_cell,
    compute_cell,
    golden_cells,
    load_fixture,
)

pytestmark = [
    pytest.mark.differential,
    pytest.mark.skipif(not HAVE_NUMPY, reason="numpy backend not available"),
]

#: Counters the batched backend is allowed to report differently (see module
#: docstring); everything else in the raw registry must match bit-for-bit.
TOLERATED_STAT_KEYS = frozenset({"fdip.prefetches_issued"})

#: Cells compared over the full raw statistics registry (one per BTB family
#: plus a partitioned-hierarchy cell, where chunk boundaries are busiest).
FULL_STATS_CELLS = (
    ("consolidated_server", BTBStyle.CONVENTIONAL, ASIDMode.FLUSH, None),
    ("consolidated_server", BTBStyle.BTBX, ASIDMode.TAGGED, None),
    ("shared_services", BTBStyle.PDEDE, ASIDMode.TAGGED, None),
    ("shared_services", BTBStyle.BTBX, ASIDMode.PARTITIONED, ASIDMode.PARTITIONED),
)


@pytest.fixture(scope="module")
def fixture() -> dict:
    return load_fixture()


@pytest.mark.parametrize(
    "preset,style,mode",
    golden_cells(),
    ids=[cell_key(*cell) for cell in golden_cells()],
)
def test_numpy_backend_matches_golden_cell(fixture, preset, style, mode):
    pinned = fixture["cells"][cell_key(preset, style, mode)]
    actual = compute_cell(preset, style, mode, backend="numpy")
    assert actual == pinned, (
        f"numpy backend diverged from the scalar oracle on "
        f"{cell_key(preset, style, mode)}"
    )


@pytest.mark.parametrize(
    "preset,style,cache_mode",
    cache_golden_cells(),
    ids=[cache_cell_key(*cell) for cell in cache_golden_cells()],
)
def test_numpy_backend_matches_cache_golden_cell(fixture, preset, style, cache_mode):
    pinned = fixture["cells"][cache_cell_key(preset, style, cache_mode)]
    actual = compute_cache_cell(preset, style, cache_mode, backend="numpy")
    assert actual == pinned, (
        f"numpy backend diverged from the scalar oracle on "
        f"{cache_cell_key(preset, style, cache_mode)}"
    )


def _cell_stats(preset, style, mode, cache_mode, backend):
    result = execute_scenario(
        preset,
        style=style,
        asid_mode=mode,
        cache_mode=cache_mode,
        budget_kib=GOLDEN_BUDGET_KIB,
        instructions=GOLDEN_INSTRUCTIONS,
        warmup_instructions=GOLDEN_WARMUP,
        backend=backend,
    )
    stats = dict(result.aggregate.stats.to_dict())
    for name in (
        "cycles",
        "instructions",
        "branches",
        "taken_branches",
        "btb_misses_taken",
        "l1i_misses",
        "l2_misses",
        "context_switches",
    ):
        stats[f"result.{name}"] = getattr(result.aggregate, name, None)
    return stats


@pytest.mark.parametrize(
    "preset,style,mode,cache_mode",
    FULL_STATS_CELLS,
    ids=[
        f"{preset}/{style.value}/{mode.value}/cache-{cache.value if cache else 'none'}"
        for preset, style, mode, cache in FULL_STATS_CELLS
    ],
)
def test_full_raw_stats_match_between_backends(preset, style, mode, cache_mode):
    python = _cell_stats(preset, style, mode, cache_mode, "python")
    numpy = _cell_stats(preset, style, mode, cache_mode, "numpy")
    differing = {
        key
        for key in set(python) | set(numpy)
        if python.get(key) != numpy.get(key)
    }
    unexpected = differing - TOLERATED_STAT_KEYS
    assert not unexpected, (
        "backends diverged beyond the documented tolerance: "
        + ", ".join(
            f"{key}: python={python.get(key)} numpy={numpy.get(key)}"
            for key in sorted(unexpected)
        )
    )

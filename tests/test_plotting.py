"""Tests for the sweep-aware plotting module (``btbx-repro plot``)."""

from __future__ import annotations

import pathlib
import xml.etree.ElementTree as ElementTree

import pytest

from repro.analysis import plotting

REPO_ROOT = pathlib.Path(__file__).parent.parent
SMOKE_CSV = REPO_ROOT / "results" / "shared_footprint_smoke.csv"
COMMITTED_FIGURE = REPO_ROOT / "results" / "shared_footprint_smoke_shared_services_btb_mpki.svg"


class TestSchemaDetection:
    def test_detects_all_three_sweep_schemas(self):
        from repro.experiments import cache_interference, scenario_sweep, shared_footprint

        assert plotting.detect_schema(scenario_sweep.CSV_FIELDS) == "scenario_sweep"
        assert plotting.detect_schema(shared_footprint.CSV_FIELDS) == "shared_footprint"
        assert plotting.detect_schema(cache_interference.CSV_FIELDS) == "cache_interference"

    def test_unknown_header_raises(self):
        with pytest.raises(plotting.PlotSchemaError, match="unrecognised"):
            plotting.detect_schema(["foo", "bar"])


def _tiny_csv(tmp_path) -> str:
    path = tmp_path / "sweep.csv"
    path.write_text(
        "sweep,preset,axis_value,style,asid_mode,tenant,btb_mpki,ipc,"
        "context_switches,partition_sets\n"
        "quantum,demo,1024,BTB-X,flush,(aggregate),10.5,1.1,4,\n"
        "quantum,demo,1024,BTB-X,flush,t0,12.0,,4,\n"
        "quantum,demo,2048,BTB-X,flush,(aggregate),8.25,1.2,2,\n"
        "quantum,demo,1024,BTB-X,tagged,(aggregate),6.0,1.3,4,\n"
        "quantum,demo,2048,BTB-X,tagged,(aggregate),5.5,1.35,2,\n",
        encoding="utf-8",
    )
    return str(path)


class TestSvgRendering:
    def test_plot_csv_writes_valid_svg_per_metric(self, tmp_path):
        figures = plotting.plot_csv(_tiny_csv(tmp_path), backend="svg")
        assert len(figures) == 2  # btb_mpki + ipc
        for figure in figures:
            root = ElementTree.parse(figure).getroot()
            assert root.tag.endswith("svg")
            text = pathlib.Path(figure).read_text(encoding="utf-8")
            assert "polyline" in text
            # Per-tenant rows are not plotted; only aggregates become series.
            assert "BTB-X/flush" in text and "BTB-X/tagged" in text
            assert "t0" not in text

    def test_output_is_deterministic(self, tmp_path):
        csv_path = _tiny_csv(tmp_path)
        first = [pathlib.Path(p).read_text() for p in plotting.plot_csv(csv_path, backend="svg")]
        second = [pathlib.Path(p).read_text() for p in plotting.plot_csv(csv_path, backend="svg")]
        assert first == second

    def test_out_dir_is_respected(self, tmp_path):
        out = tmp_path / "figures"
        figures = plotting.plot_csv(_tiny_csv(tmp_path), out_dir=str(out), backend="svg")
        assert all(pathlib.Path(p).parent == out for p in figures)

    def test_empty_csv_raises_schema_error(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("", encoding="utf-8")
        with pytest.raises(plotting.PlotSchemaError):
            plotting.plot_csv(str(empty))


class TestCommittedFigure:
    """The committed smoke figure must stay in lockstep with its CSV."""

    def test_committed_figure_matches_its_csv(self, tmp_path):
        assert SMOKE_CSV.exists() and COMMITTED_FIGURE.exists()
        figures = plotting.plot_csv(str(SMOKE_CSV), out_dir=str(tmp_path), backend="svg")
        regenerated = {pathlib.Path(p).name: pathlib.Path(p).read_text() for p in figures}
        assert COMMITTED_FIGURE.name in regenerated
        assert COMMITTED_FIGURE.read_text() == regenerated[COMMITTED_FIGURE.name], (
            "results/shared_footprint_smoke_*.svg drifted from its CSV; "
            "regenerate it with 'btbx-repro plot results/shared_footprint_smoke.csv'"
        )

    def test_committed_figure_is_valid_svg(self):
        root = ElementTree.parse(COMMITTED_FIGURE).getroot()
        assert root.tag.endswith("svg")


class TestBackendResolution:
    def test_svg_backend_always_available(self):
        assert plotting.resolve_backend("svg") == "svg"

    def test_auto_resolves_to_an_available_backend(self):
        assert plotting.resolve_backend("auto") in ("svg", "mpl")

    def test_mpl_requested_without_matplotlib_raises(self, monkeypatch):
        monkeypatch.setattr(plotting, "matplotlib_available", lambda: False)
        with pytest.raises(plotting.PlotSchemaError, match="matplotlib"):
            plotting.resolve_backend("mpl")

    def test_unknown_backend_raises(self):
        with pytest.raises(plotting.PlotSchemaError, match="unknown plot backend"):
            plotting.resolve_backend("gnuplot")

"""Tests for the synthetic workload generator (programs, traces, calibration)."""

from __future__ import annotations

import pytest

from repro.common.config import ISAStyle
from repro.common.errors import WorkloadError
from repro.analysis.offset_analysis import offset_distribution
from repro.workloads.cfg import ProgramBuilder, TerminatorKind, build_program
from repro.workloads.execution import TraceGenerator, generate_trace, verify_trace_consistency
from repro.workloads.spec import WorkloadClass, WorkloadSpec, client_spec, server_spec
from repro.workloads.suites import (
    SERVER_WORKLOAD_NAMES,
    SUITE_NAMES,
    build_suite,
    build_workload,
    workload_names,
    workload_spec_by_name,
)


class TestSpecValidation:
    def test_bad_terminator_fractions(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec("bad", WorkloadClass.SERVER, conditional_fraction=0.9, call_fraction=0.3)

    def test_bad_call_classes(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec("bad", WorkloadClass.SERVER, neighbor_call_fraction=0.9, module_call_fraction=0.3)

    def test_bad_block_range(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec("bad", WorkloadClass.SERVER, min_blocks_per_function=5, max_blocks_per_function=2)

    def test_scaled_changes_function_count(self):
        spec = server_spec("s", seed=1)
        bigger = spec.scaled(2.0)
        assert bigger.functions_per_module == 2 * spec.functions_per_module

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(WorkloadError):
            server_spec("s", seed=1).scaled(0)


class TestProgramBuilder:
    def test_program_validates(self):
        program = build_program(server_spec("p", seed=3, footprint_scale=0.2))
        program.validate()
        assert program.num_functions > 100
        assert program.static_branch_count() > 0
        assert program.code_footprint_bytes() > 0

    def test_deterministic_given_seed(self):
        spec = client_spec("c", seed=11, footprint_scale=0.5)
        a = ProgramBuilder(spec).build()
        b = ProgramBuilder(spec).build()
        assert a.functions[5].entry_pc == b.functions[5].entry_pc
        assert a.static_branch_count() == b.static_branch_count()

    def test_levelled_call_graph(self):
        program = build_program(server_spec("p", seed=5, footprint_scale=0.2))
        for function in program.functions:
            for block in function.blocks:
                if block.terminator is TerminatorKind.CALL:
                    callee = program.functions[block.callee]
                    assert callee.is_library or callee.level > function.level

    def test_library_modules_far_away(self):
        spec = server_spec("p", seed=5, footprint_scale=0.2)
        program = build_program(spec)
        app_bases = program.module_bases[: spec.num_modules]
        lib_bases = program.module_bases[spec.num_modules:]
        assert all(lib > max(app_bases) for lib in lib_bases)

    def test_x86_variable_instruction_sizes(self):
        program = build_program(server_spec("p", seed=5, footprint_scale=0.2, isa=ISAStyle.X86))
        sizes = {
            size
            for function in program.functions
            for block in function.blocks
            for size in block.instruction_sizes
        }
        assert len(sizes) > 1


class TestTraceGeneration:
    def test_consistency(self, small_server_trace):
        verify_trace_consistency(small_server_trace)

    def test_client_consistency(self, small_client_trace):
        verify_trace_consistency(small_client_trace)

    def test_requested_length(self, small_server_trace):
        assert len(small_server_trace) == 30_000

    def test_deterministic(self):
        spec = client_spec("c", seed=21, footprint_scale=0.4)
        a = generate_trace(spec, 5_000)
        b = generate_trace(spec, 5_000)
        assert list(a) == list(b)

    def test_rejects_non_positive_length(self):
        spec = client_spec("c", seed=21, footprint_scale=0.4)
        with pytest.raises(WorkloadError):
            TraceGenerator(build_program(spec)).generate(0)

    def test_metadata_recorded(self, small_server_trace):
        assert small_server_trace.metadata["workload_class"] == "server"
        assert small_server_trace.metadata["max_call_depth"] >= 1

    def test_branch_mix_plausible(self, small_server_trace):
        summary = small_server_trace.summary()
        assert 0.10 <= summary.branch_fraction <= 0.35
        # Calls and returns must balance closely (every call returns).
        assert abs(summary.call_count - summary.return_count) <= summary.call_count * 0.2
        assert summary.conditional_count > summary.call_count

    def test_server_footprint_exceeds_client(self, small_server_trace, small_client_trace):
        server = small_server_trace.summary()
        client = small_client_trace.summary()
        assert server.unique_branch_pcs > 3 * client.unique_branch_pcs
        assert server.instruction_footprint_bytes > client.instruction_footprint_bytes


class TestOffsetCalibration:
    """The generator must roughly reproduce the paper's Figure 4 bands."""

    def test_offset_bands_server(self, small_server_trace):
        dist = offset_distribution(small_server_trace)
        assert 0.40 <= dist.fraction_covered(6) <= 0.85
        assert dist.fraction_covered(25) >= 0.95
        assert 1.0 - dist.fraction_covered(25) <= 0.03

    def test_returns_have_zero_bits(self, small_server_trace):
        dist = offset_distribution(small_server_trace)
        summary = small_server_trace.summary()
        assert dist.histogram.get(0, 0) >= summary.return_count

    def test_x86_needs_more_bits_than_arm(self, small_server_trace, small_x86_trace):
        arm = offset_distribution(small_server_trace)
        x86 = offset_distribution(small_x86_trace)
        # At the 6-bit point, Arm64 coverage should not be below x86 by much:
        # the paper reports x86 needs 1-2 extra bits for the same coverage.
        assert arm.quantile_bits(0.5) <= x86.quantile_bits(0.5) + 1


class TestSuites:
    def test_suite_names(self):
        for suite in SUITE_NAMES:
            assert len(workload_names(suite)) > 0

    def test_unknown_suite_rejected(self):
        with pytest.raises(WorkloadError):
            workload_names("mystery")

    def test_unknown_workload_rejected(self):
        with pytest.raises(WorkloadError):
            workload_spec_by_name("server_999")

    def test_server_names_match_figure9_axis(self):
        assert "server_001" in SERVER_WORKLOAD_NAMES
        assert "server_039" in SERVER_WORKLOAD_NAMES
        assert "server_005" not in SERVER_WORKLOAD_NAMES  # the figure skips 005-008

    def test_build_suite_with_limit(self):
        suite = build_suite("ipc1_client", 2_000, limit=2)
        assert len(suite) == 2
        for trace in suite:
            assert len(trace) == 2_000

    def test_build_workload_by_name(self):
        trace = build_workload("client_001", 2_000)
        assert trace.name == "client_001"

    def test_x86_suite_uses_x86_isa(self):
        suite = build_suite("x86_server", 2_000, limit=1)
        assert list(suite)[0].isa is ISAStyle.X86

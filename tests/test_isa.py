"""Unit tests for branch classification and the instruction record."""

from __future__ import annotations

import pytest

from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction


class TestBranchType:
    def test_non_branch(self):
        assert not BranchType.NOT_BRANCH.is_branch

    def test_always_taken_classes(self):
        for bt in (BranchType.UNCONDITIONAL, BranchType.CALL, BranchType.RETURN,
                   BranchType.INDIRECT, BranchType.INDIRECT_CALL):
            assert bt.is_always_taken
        assert not BranchType.CONDITIONAL.is_always_taken

    def test_ras_interaction(self):
        assert BranchType.RETURN.target_from_ras
        assert BranchType.CALL.is_call
        assert BranchType.INDIRECT_CALL.is_call
        assert not BranchType.CONDITIONAL.is_call

    def test_decode_resolvable(self):
        assert BranchType.UNCONDITIONAL.decode_resolvable
        assert BranchType.CALL.decode_resolvable
        assert BranchType.CONDITIONAL.decode_resolvable
        assert not BranchType.RETURN.decode_resolvable
        assert not BranchType.INDIRECT.decode_resolvable

    def test_two_bit_encoding(self):
        encodings = {bt.encoding() for bt in BranchType if bt.is_branch}
        assert encodings == {0, 1, 2, 3}

    def test_non_branch_has_no_encoding(self):
        with pytest.raises(ValueError):
            BranchType.NOT_BRANCH.encoding()


class TestInstruction:
    def test_non_branch_constructor(self):
        inst = Instruction.non_branch(0x1000)
        assert not inst.is_branch
        assert inst.next_pc == 0x1004

    def test_branch_constructor_and_next_pc(self):
        taken = Instruction.branch(0x1000, BranchType.CONDITIONAL, True, 0x2000)
        not_taken = Instruction.branch(0x1000, BranchType.CONDITIONAL, False, 0x2000)
        assert taken.next_pc == 0x2000
        assert not_taken.next_pc == 0x1004

    def test_always_taken_must_be_taken(self):
        with pytest.raises(ValueError):
            Instruction.branch(0x1000, BranchType.UNCONDITIONAL, False, 0x2000)

    def test_non_branch_cannot_be_taken(self):
        with pytest.raises(ValueError):
            Instruction(pc=0x1000, taken=True)

    def test_negative_pc_rejected(self):
        with pytest.raises(ValueError):
            Instruction(pc=-4)

    def test_cache_block(self):
        inst = Instruction.non_branch(0x1234)
        assert inst.cache_block(64) == 0x1200

    def test_fall_through_respects_size(self):
        inst = Instruction(pc=0x1000, size=3)
        assert inst.fall_through == 0x1003

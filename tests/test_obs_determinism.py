"""Recording must never change results: golden cells replayed with telemetry on.

The telemetry layer observes the simulation; it must not perturb it.  This
suite replays the entire golden grid -- every scenario cell and every cache
hierarchy cell pinned by :mod:`test_golden_scenarios` -- under an active
:class:`~repro.obs.JsonlRecorder` and requires byte-identical results against
the committed fixture.  Any instrumentation that leaks into simulation state
(an attribute read with side effects, an RNG draw, a cache-payload change)
fails here with the exact cell named.

One test per fixture grid (rather than one per cell) keeps the tier-1 wall
time bounded: the cells share a recorder, which also exercises a long-lived
recorder accumulating tens of thousands of events across many scenarios.
"""

from __future__ import annotations

import pytest

from repro.obs import JsonlRecorder, use_recorder
from test_golden_scenarios import (
    cache_cell_key,
    cache_golden_cells,
    cell_key,
    compute_cache_cell,
    compute_cell,
    golden_cells,
    load_fixture,
)


@pytest.fixture(scope="module")
def fixture() -> dict:
    return load_fixture()


@pytest.mark.golden
def test_all_golden_cells_are_byte_identical_with_recording_on(fixture):
    recorder = JsonlRecorder(origin="golden")
    with use_recorder(recorder):
        for preset, style, mode in golden_cells():
            key = cell_key(preset, style, mode)
            assert compute_cell(preset, style, mode) == fixture["cells"][key], (
                f"recording changed the result of {key}; telemetry must be "
                "observational only"
            )
    events = recorder.drain()
    assert sum(1 for e in events if e["type"] == "span") >= len(golden_cells()), (
        "the recorder must actually have been recording during the replay"
    )


@pytest.mark.golden
def test_all_cache_golden_cells_are_byte_identical_with_recording_on(fixture):
    recorder = JsonlRecorder(origin="golden-cache")
    with use_recorder(recorder):
        for preset, style, cache_mode in cache_golden_cells():
            key = cache_cell_key(preset, style, cache_mode)
            assert (
                compute_cache_cell(preset, style, cache_mode) == fixture["cells"][key]
            ), (
                f"recording changed the result of {key}; telemetry must be "
                "observational only"
            )
    assert any(e["type"] == "span" for e in recorder.drain())

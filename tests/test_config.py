"""Unit tests for the configuration dataclasses."""

from __future__ import annotations

import pytest

from repro.common.config import (
    ASIDMode,
    BACKEND_ENV_VAR,
    BTBConfig,
    BTBStyle,
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    FDIPConfig,
    ISAStyle,
    MachineConfig,
    SimulationConfig,
    default_machine_config,
    partition_set_counts,
    resolve_backend,
    summarize_machine,
    validate_partition_weights,
)
from repro.common.errors import ConfigurationError


class TestCacheConfig:
    def test_table2_l1i_geometry(self):
        config = CacheConfig("L1I", 32 * 1024, 8)
        assert config.num_sets == 64
        assert config.num_lines == 512

    def test_rejects_bad_divisibility(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("bad", 1000, 3)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("bad", 32 * 1024, 8, line_size=48)


class TestCoreAndPredictorConfig:
    def test_defaults_match_table2(self):
        core = CoreConfig()
        assert core.fetch_width == 6
        assert core.rob_entries == 352
        predictor = BranchPredictorConfig()
        assert predictor.kind == "hashed_perceptron"
        assert predictor.ras_entries == 64

    def test_flush_cheaper_than_resteer_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(execute_flush_penalty=2, decode_resteer_penalty=5)

    def test_unknown_predictor_rejected(self):
        with pytest.raises(ConfigurationError):
            BranchPredictorConfig(kind="tage_unimplemented")

    def test_fdip_validation(self):
        with pytest.raises(ConfigurationError):
            FDIPConfig(ftq_instructions=0)


class TestBTBConfig:
    def test_num_sets(self):
        config = BTBConfig(entries=4096, associativity=8)
        assert config.num_sets == 512

    def test_entries_must_divide(self):
        with pytest.raises(ConfigurationError):
            BTBConfig(entries=100, associativity=8)


class TestISAStyle:
    def test_alignment_bits(self):
        assert ISAStyle.ARM64.alignment_bits == 2
        assert ISAStyle.X86.alignment_bits == 0


class TestMachineConfig:
    def test_default_machine_for_each_style(self):
        for style in BTBStyle:
            machine = default_machine_config(btb_style=style)
            assert machine.btb.style is style

    def test_with_btb_and_with_fdip_return_copies(self):
        machine = MachineConfig()
        other = machine.with_btb(entries=1024).with_fdip(False)
        assert other.btb.entries == 1024
        assert other.fdip.enabled is False
        # The original is untouched (frozen dataclasses + replace).
        assert machine.btb.entries != 1024 or machine.fdip.enabled

    def test_summary_contains_key_parameters(self):
        summary = summarize_machine(default_machine_config())
        assert "6-wide" in summary["fetch"]
        assert "hashed_perceptron" in summary["branch_predictor"]
        assert "32KB" in summary["l1i"]


class TestResolveBackend:
    def test_none_falls_back_to_python(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None) == "python"

    def test_env_var_is_normalized(self, monkeypatch):
        """Regression: 'numpy ' or 'NUMPY' from CI YAML must not die as unknown."""
        for raw in ("python ", " PYTHON", "Python\n", "python"):
            monkeypatch.setenv(BACKEND_ENV_VAR, raw)
            assert resolve_backend(None) == "python"

    def test_explicit_argument_is_normalized(self):
        assert resolve_backend(" PYTHON ") == "python"

    def test_whitespace_only_env_falls_back_to_python(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "   ")
        assert resolve_backend(None) == "python"

    def test_unknown_backend_still_rejected(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        with pytest.raises(ConfigurationError):
            resolve_backend("fortran")
        monkeypatch.setenv(BACKEND_ENV_VAR, "fortran ")
        with pytest.raises(ConfigurationError):
            resolve_backend(None)


class TestPartitionMaps:
    def test_all_three_asid_modes_exist(self):
        assert {mode.value for mode in ASIDMode} == {"flush", "tagged", "partitioned"}

    def test_valid_weights_pass_through_as_tuple(self):
        assert validate_partition_weights([2, 1, 1]) == (2, 1, 1)

    @pytest.mark.parametrize("weights", [(), None, (0,), (-1, 1), (1.5, 1), (True, 1), ("2", 1)])
    def test_bad_weights_rejected(self, weights):
        with pytest.raises(ConfigurationError):
            validate_partition_weights(weights)

    def test_counts_sum_exactly_and_respect_proportions(self):
        counts = partition_set_counts(64, (4, 1, 1))
        assert sum(counts) == 64
        assert counts[0] > counts[1] == counts[2] >= 1
        assert partition_set_counts(64, (1, 1, 1, 1)) == [16, 16, 16, 16]

    def test_every_tenant_gets_at_least_one_set(self):
        counts = partition_set_counts(5, (100, 1, 1, 1, 1))
        assert sum(counts) == 5
        assert min(counts) == 1

    def test_remainder_distribution_is_deterministic(self):
        assert partition_set_counts(7, (1, 1, 1)) == partition_set_counts(7, (1, 1, 1))
        assert sum(partition_set_counts(7, (1, 1, 1))) == 7

    def test_more_tenants_than_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            partition_set_counts(2, (1, 1, 1))

    def test_thousand_tenants_with_adversarial_weights_apportion_exactly(self):
        """Regression: the apportionment must stay exact at consolidation scale.

        The previous implementation computed fractional shares in floating
        point; with 1000 tenants and weights spanning fifteen orders of
        magnitude the products overflow the 53-bit mantissa, so nothing about
        the result was guaranteed.  The integer rewrite is checked here
        against an exact ``Fraction``-based largest-remainder reference.
        """
        from fractions import Fraction
        import random

        rng = random.Random(0xBADC0DE)
        tenants = 1_000
        weights = tuple(
            rng.choice((1, 3, 997, 10**6, 10**15 + rng.randrange(10**12)))
            for _ in range(tenants)
        )
        for num_sets in (tenants, tenants + 1, 4_096, 65_536):
            counts = partition_set_counts(num_sets, weights)
            assert sum(counts) == num_sets
            assert min(counts) >= 1
            assert counts == partition_set_counts(num_sets, weights)

            # Exact reference: floor of the proportional share plus the
            # leftover sets handed to the largest exact remainders.
            spare = num_sets - tenants
            total = sum(weights)
            reference = [1 + spare * w // total for w in weights]
            leftover = num_sets - sum(reference)
            order = sorted(
                range(tenants),
                key=lambda i: (Fraction(spare * weights[i] % total, total), weights[i], -i),
                reverse=True,
            )
            for index in order[:leftover]:
                reference[index] += 1
            assert counts == reference

    def test_matches_prior_float_apportionment_on_small_grids(self):
        """Differential golden-safety proof for the integer apportionment.

        Every partitioned golden cell apportions a handful of tenants over a
        BTB-sized set count with small weights, where the old float
        arithmetic happened to be exact.  Re-implement the old algorithm
        and assert byte-identical counts across a grid that covers every
        weight pattern the preset scenarios and the golden suite use, so the
        rewrite provably cannot move a single golden cell.
        """

        def float_counts(num_sets, weights):
            tenants = len(weights)
            spare = num_sets - tenants
            total = sum(weights)
            shares = [spare * weight / total for weight in weights]
            counts = [1 + int(share) for share in shares]
            leftover = num_sets - sum(counts)
            by_remainder = sorted(
                range(tenants),
                key=lambda i: (shares[i] - int(shares[i]), weights[i], -i),
                reverse=True,
            )
            for index in by_remainder[:leftover]:
                counts[index] += 1
            return counts

        weight_patterns = [
            (1,), (1, 1), (1, 1, 1), (1, 1, 1, 1), (4, 1, 1), (3, 2, 2),
            (42, 11, 11), (1, 2, 3, 4, 5), (7, 5, 3, 2, 1, 1, 1, 1),
        ]
        set_counts = [8, 16, 22, 32, 64, 96, 128, 341, 512, 1024, 2048]
        checked = 0
        for weights in weight_patterns:
            for num_sets in set_counts:
                if num_sets < len(weights):
                    continue
                assert partition_set_counts(num_sets, weights) == float_counts(
                    num_sets, weights
                ), f"divergence at num_sets={num_sets} weights={weights}"
                checked += 1
        assert checked >= 90


class TestSimulationConfig:
    def test_negative_warmup_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(warmup_instructions=-1)

    def test_zero_measured_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(simulation_instructions=0)

"""Unit tests for the configuration dataclasses."""

from __future__ import annotations

import pytest

from repro.common.config import (
    BTBConfig,
    BTBStyle,
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    FDIPConfig,
    ISAStyle,
    MachineConfig,
    SimulationConfig,
    default_machine_config,
    summarize_machine,
)
from repro.common.errors import ConfigurationError


class TestCacheConfig:
    def test_table2_l1i_geometry(self):
        config = CacheConfig("L1I", 32 * 1024, 8)
        assert config.num_sets == 64
        assert config.num_lines == 512

    def test_rejects_bad_divisibility(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("bad", 1000, 3)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("bad", 32 * 1024, 8, line_size=48)


class TestCoreAndPredictorConfig:
    def test_defaults_match_table2(self):
        core = CoreConfig()
        assert core.fetch_width == 6
        assert core.rob_entries == 352
        predictor = BranchPredictorConfig()
        assert predictor.kind == "hashed_perceptron"
        assert predictor.ras_entries == 64

    def test_flush_cheaper_than_resteer_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(execute_flush_penalty=2, decode_resteer_penalty=5)

    def test_unknown_predictor_rejected(self):
        with pytest.raises(ConfigurationError):
            BranchPredictorConfig(kind="tage_unimplemented")

    def test_fdip_validation(self):
        with pytest.raises(ConfigurationError):
            FDIPConfig(ftq_instructions=0)


class TestBTBConfig:
    def test_num_sets(self):
        config = BTBConfig(entries=4096, associativity=8)
        assert config.num_sets == 512

    def test_entries_must_divide(self):
        with pytest.raises(ConfigurationError):
            BTBConfig(entries=100, associativity=8)


class TestISAStyle:
    def test_alignment_bits(self):
        assert ISAStyle.ARM64.alignment_bits == 2
        assert ISAStyle.X86.alignment_bits == 0


class TestMachineConfig:
    def test_default_machine_for_each_style(self):
        for style in BTBStyle:
            machine = default_machine_config(btb_style=style)
            assert machine.btb.style is style

    def test_with_btb_and_with_fdip_return_copies(self):
        machine = MachineConfig()
        other = machine.with_btb(entries=1024).with_fdip(False)
        assert other.btb.entries == 1024
        assert other.fdip.enabled is False
        # The original is untouched (frozen dataclasses + replace).
        assert machine.btb.entries != 1024 or machine.fdip.enabled

    def test_summary_contains_key_parameters(self):
        summary = summarize_machine(default_machine_config())
        assert "6-wide" in summary["fetch"]
        assert "hashed_perceptron" in summary["branch_predictor"]
        assert "32KB" in summary["l1i"]


class TestSimulationConfig:
    def test_negative_warmup_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(warmup_instructions=-1)

    def test_zero_measured_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(simulation_instructions=0)

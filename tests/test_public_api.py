"""Tests for the public package surface (`import repro`) and the runner helpers."""

from __future__ import annotations

import pytest

import repro
from repro.common.config import BTBStyle
from repro.experiments.config import SMOKE_SCALE
from repro.experiments.runner import (
    EVALUATED_STYLES,
    clear_trace_cache,
    evaluation_traces,
    is_server_workload,
    simulate,
    style_label,
)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        trace = repro.build_workload("client_001", 4_000)
        result = repro.simulate_trace(trace, btb_style=repro.BTBStyle.BTBX, btb_entries=512)
        assert result.instructions > 0
        assert result.btb_storage_kib > 0

    def test_make_btb_for_budget_exported(self):
        btb = repro.make_btb_for_budget(repro.BTBStyle.BTBX, 1.8125)
        assert btb.capacity_entries() == 520


class TestRunnerHelpers:
    def test_style_labels(self):
        assert [style_label(s) for s in EVALUATED_STYLES] == ["Conv-BTB", "PDede", "BTB-X"]

    def test_is_server_workload(self):
        assert is_server_workload("server_032")
        assert is_server_workload("cvp_server_001")
        assert is_server_workload("wordpress")
        assert not is_server_workload("client_003")

    def test_evaluation_traces_respect_limits(self):
        clear_trace_cache()
        traces = evaluation_traces(SMOKE_SCALE, suites=("ipc1_client", "ipc1_server"))
        assert len(traces) == SMOKE_SCALE.client_workloads + SMOKE_SCALE.server_workloads
        for trace in traces:
            assert len(trace) == SMOKE_SCALE.instructions
        clear_trace_cache()

    def test_simulate_single_config(self):
        clear_trace_cache()
        trace = evaluation_traces(SMOKE_SCALE, suites=("ipc1_client",))[0]
        result = simulate(trace, BTBStyle.CONVENTIONAL, 0.90625, fdip_enabled=True, scale=SMOKE_SCALE)
        assert result.workload == trace.name
        assert result.instructions == SMOKE_SCALE.instructions - SMOKE_SCALE.warmup_instructions
        assert result.btb_storage_kib <= 0.91
        clear_trace_cache()

    @pytest.mark.parametrize("style", EVALUATED_STYLES)
    def test_simulate_all_styles_produce_metrics(self, style):
        clear_trace_cache()
        trace = evaluation_traces(SMOKE_SCALE, suites=("ipc1_client",))[0]
        result = simulate(trace, style, 1.8125, fdip_enabled=False, scale=SMOKE_SCALE)
        assert result.cycles > 0
        assert result.ipc > 0
        clear_trace_cache()

"""Tests for the multi-tenant scenario subsystem.

Covers the PR's contract points: the composer interleaves deterministically
without materializing the merge, warm/cold ASID assignment, context switches
thread through BTB/predictor/RAS state correctly in both ASID modes, a
single-tenant scenario reproduces the plain single-trace simulation exactly,
and scenario cells behave like every other engine job (hashable, worker-safe,
disk-cacheable).
"""

from __future__ import annotations

import pytest

from repro.common.config import ASIDMode, BTBStyle, default_machine_config
from repro.common.errors import ConfigurationError
from repro.core.simulator import FrontEndSimulator
from repro.btb.btbx import BTBX
from repro.btb.conventional import ConventionalBTB
from repro.btb.ideal import IdealBTB
from repro.btb.storage import make_btb_for_budget
from repro.experiments.engine import (
    ExperimentEngine,
    ScenarioJob,
    _RESULT_FIELDS,
    _result_to_payload,
)
from repro.experiments.runner import clear_trace_cache
from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction
from repro.scenarios import (
    ScenarioSpec,
    TenantSpec,
    TraceComposer,
    execute_scenario,
    get_scenario,
    scenario_names,
)
from repro.scenarios.presets import PRESET_NAMES
from repro.traces.store import default_store
from repro.traces.trace import Trace, TraceCursor


@pytest.fixture(autouse=True)
def _bounded_traces():
    yield
    clear_trace_cache()


def _two_tenant_spec(**overrides) -> ScenarioSpec:
    settings = dict(
        name="test_pair",
        tenants=(
            TenantSpec("alpha", "server_001"),
            TenantSpec("beta", "server_009"),
        ),
        quantum_instructions=1_000,
        policy="round_robin",
        switch_semantics="warm",
    )
    settings.update(overrides)
    return ScenarioSpec(**settings)


class TestScenarioSpec:
    def test_specs_are_hashable(self):
        assert hash(_two_tenant_spec()) == hash(_two_tenant_spec())

    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ConfigurationError):
            _two_tenant_spec(
                tenants=(TenantSpec("t", "server_001"), TenantSpec("t", "server_009"))
            )

    def test_bad_policy_and_semantics_rejected(self):
        with pytest.raises(ConfigurationError):
            _two_tenant_spec(policy="lottery")
        with pytest.raises(ConfigurationError):
            _two_tenant_spec(switch_semantics="lukewarm")
        with pytest.raises(ConfigurationError):
            _two_tenant_spec(quantum_instructions=0)
        with pytest.raises(ConfigurationError):
            TenantSpec("t", "server_001", weight=0)

    @pytest.mark.parametrize("weight", [0, -3, 1.5, 2.0, True, None])
    def test_non_positive_integer_weights_rejected_naming_the_field(self, weight):
        with pytest.raises(ConfigurationError, match="weight"):
            TenantSpec("greedy", "server_001", weight=weight)

    @pytest.mark.parametrize("quantum", [0, -1024, 512.5, 4096.0, False, None])
    def test_bad_quanta_rejected_naming_the_field(self, quantum):
        with pytest.raises(ConfigurationError, match="quantum_instructions"):
            _two_tenant_spec(quantum_instructions=quantum)

    def test_partition_weights_follow_tenant_order(self):
        spec = _two_tenant_spec(
            tenants=(
                TenantSpec("heavy", "server_001", weight=3),
                TenantSpec("light", "server_009", weight=1),
            ),
        )
        assert spec.partition_weights == (3, 1)

    def test_weighted_quantum_scales_with_weight(self):
        spec = _two_tenant_spec(
            tenants=(
                TenantSpec("heavy", "server_001", weight=3),
                TenantSpec("light", "server_009", weight=1),
            ),
            policy="weighted",
        )
        assert spec.turn_quantum(spec.tenants[0]) == 3_000
        assert spec.turn_quantum(spec.tenants[1]) == 1_000

    def test_presets_registered(self):
        assert set(PRESET_NAMES) == {
            "solo_baseline",
            "consolidated_server",
            "microservice_churn",
            "shared_services",
            "noisy_neighbor",
        }
        for name in scenario_names():
            assert get_scenario(name).name == name

    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigurationError):
            get_scenario("no_such_scenario")


class TestTraceCursor:
    def test_wraps_and_counts(self, small_client_trace):
        cursor = TraceCursor(small_client_trace)
        length = len(small_client_trace)
        first = list(cursor.take(length + 10))
        assert len(first) == length + 10
        assert cursor.laps == 1
        assert cursor.position == 10
        assert cursor.consumed == length + 10
        # The wrapped tail replays the head of the trace.
        assert [i.pc for i in first[length:]] == [
            small_client_trace[i].pc for i in range(10)
        ]

    def test_abandoned_take_leaves_cursor_consistent(self, small_client_trace):
        """Regression: a ``take()`` dropped mid-way must commit exactly what
        it yielded -- position, laps, and consumed all agreeing -- so the
        cursor resumes at the next unread instruction."""
        cursor = TraceCursor(small_client_trace)
        length = len(small_client_trace)
        partial = cursor.take(length + 10)
        first = [next(partial) for _ in range(length + 3)]
        partial.close()  # abandon the take after wrapping once
        assert cursor.position == 3
        assert cursor.laps == 1
        assert cursor.consumed == length + 3
        assert [i.pc for i in first[length:]] == [
            small_client_trace[i].pc for i in range(3)
        ]
        # The next take starts at exactly the next unread instruction.
        resumed = list(cursor.take(2))
        assert [i.pc for i in resumed] == [
            small_client_trace[3].pc,
            small_client_trace[4].pc,
        ]
        assert cursor.consumed == length + 5
        assert cursor.laps == 1

    def test_take_abandoned_by_exception_still_commits(self, small_client_trace):
        cursor = TraceCursor(small_client_trace)
        taking = cursor.take(100)
        for _ in range(7):
            next(taking)
        with pytest.raises(RuntimeError):
            taking.throw(RuntimeError("consumer died"))
        assert cursor.position == 7
        assert cursor.consumed == 7
        assert cursor.laps == 0


class TestTraceComposer:
    def _traces(self, spec, instructions=6_000):
        store = default_store()
        return {workload: store.get(workload, instructions) for workload in set(spec.workloads)}

    def test_stream_has_exact_length_and_round_robin_order(self):
        spec = _two_tenant_spec()
        composer = TraceComposer(spec, self._traces(spec))
        slots = list(composer.stream(5_500))
        assert len(slots) == 5_500
        # Quantum 1000, round robin: alpha, beta, alpha, beta, alpha, beta(500).
        tenants = [tenant for _, tenant, _ in slots]
        assert tenants[:1_000] == ["alpha"] * 1_000
        assert tenants[1_000:2_000] == ["beta"] * 1_000
        assert tenants[5_000:] == ["beta"] * 500

    def test_warm_asids_are_stable_per_tenant(self):
        spec = _two_tenant_spec()
        composer = TraceComposer(spec, self._traces(spec))
        asids = {tenant: {asid for asid, t, _ in composer.stream(4_000) if t == tenant}
                 for tenant in ("alpha", "beta")}
        assert asids == {"alpha": {0}, "beta": {1}}

    def test_cold_asids_are_fresh_every_turn(self):
        spec = _two_tenant_spec(switch_semantics="cold")
        composer = TraceComposer(spec, self._traces(spec))
        seen = []
        for asid, _, _ in composer.stream(4_000):
            if not seen or seen[-1] != asid:
                seen.append(asid)
        assert seen == [0, 1, 2, 3]

    def test_streams_are_deterministic(self):
        spec = _two_tenant_spec()
        traces = self._traces(spec)
        left = [(a, t, i.pc) for a, t, i in TraceComposer(spec, traces).stream(3_000)]
        right = [(a, t, i.pc) for a, t, i in TraceComposer(spec, traces).stream(3_000)]
        assert left == right

    def test_tenant_stream_wraps_its_trace(self):
        spec = ScenarioSpec(
            name="solo_wrap",
            tenants=(TenantSpec("only", "client_001"),),
            quantum_instructions=10_000,
        )
        traces = self._traces(spec, instructions=2_000)
        slots = list(TraceComposer(spec, traces).stream(5_000))
        trace = traces["client_001"]
        assert [i.pc for _, _, i in slots[2_000:4_000]] == [inst.pc for inst in trace]

    def test_context_switch_count_matches_stream(self):
        for semantics in ("warm", "cold"):
            spec = _two_tenant_spec(switch_semantics=semantics)
            composer = TraceComposer(spec, self._traces(spec))
            changes = 0
            previous = None
            for asid, _, _ in composer.stream(5_500):
                if previous is not None and asid != previous:
                    changes += 1
                previous = asid
            assert changes == composer.context_switch_count(5_500)

    def test_mixed_isa_rejected(self, small_server_trace, small_x86_trace):
        spec = ScenarioSpec(
            name="mixed",
            tenants=(TenantSpec("a", "arm_wl"), TenantSpec("b", "x86_wl")),
        )
        with pytest.raises(ConfigurationError):
            TraceComposer(spec, {"arm_wl": small_server_trace, "x86_wl": small_x86_trace})

    def test_missing_trace_rejected(self, small_server_trace):
        spec = _two_tenant_spec()
        with pytest.raises(ConfigurationError):
            TraceComposer(spec, {"server_001": small_server_trace})

    def test_empty_trace_rejected_at_construction(self, small_server_trace):
        """An empty tenant trace is a configuration error, caught once in the
        composer constructor so both streaming paths share the check."""
        spec = _two_tenant_spec()
        empty = Trace("server_009", [], isa=small_server_trace.isa)
        with pytest.raises(ConfigurationError, match="server_009"):
            TraceComposer(spec, {"server_001": small_server_trace, "server_009": empty})


class TestASIDStateManagement:
    branch = Instruction.branch(0x401000, BranchType.UNCONDITIONAL, True, 0x402800)

    @pytest.mark.parametrize("btb", [ConventionalBTB(512), BTBX(512), IdealBTB()])
    def test_tagged_btb_isolates_address_spaces(self, btb):
        btb.update(self.branch)
        assert btb.lookup(self.branch.pc).hit
        btb.set_active_asid(7)
        assert not btb.lookup(self.branch.pc).hit
        btb.set_active_asid(0)
        assert btb.lookup(self.branch.pc).hit

    def test_flush_mode_clears_everything(self):
        machine = default_machine_config(asid_mode=ASIDMode.FLUSH)
        simulator = FrontEndSimulator(machine)
        simulator.bpu.btb.update(self.branch)
        simulator.bpu.ras.push(0x1234)
        simulator.bpu.context_switch(1)
        assert not simulator.bpu.btb.lookup(self.branch.pc).hit
        assert simulator.bpu.ras.peek() is None

    def test_tagged_mode_checkpoints_ras_per_asid(self):
        machine = default_machine_config(asid_mode=ASIDMode.TAGGED)
        simulator = FrontEndSimulator(machine)
        simulator.bpu.ras.push(0x1111)
        simulator.bpu.context_switch(1)
        assert simulator.bpu.ras.peek() is None  # fresh address space
        simulator.bpu.ras.push(0x2222)
        simulator.bpu.context_switch(0)
        assert simulator.bpu.ras.peek() == 0x1111  # restored checkpoint
        simulator.bpu.context_switch(1)
        assert simulator.bpu.ras.peek() == 0x2222

    def test_tagged_mode_retains_btb_across_switches(self):
        machine = default_machine_config(asid_mode=ASIDMode.TAGGED)
        simulator = FrontEndSimulator(machine)
        simulator.bpu.btb.update(self.branch)
        simulator.bpu.context_switch(1)
        assert not simulator.bpu.btb.lookup(self.branch.pc).hit
        simulator.bpu.context_switch(0)
        assert simulator.bpu.btb.lookup(self.branch.pc).hit

    def test_partitioned_mode_retains_btb_across_switches(self):
        machine = default_machine_config(asid_mode=ASIDMode.PARTITIONED)
        simulator = FrontEndSimulator(machine)
        simulator.bpu.btb.configure_partitions((1, 1))
        simulator.bpu.btb.update(self.branch)
        simulator.bpu.context_switch(1)
        assert not simulator.bpu.btb.lookup(self.branch.pc).hit
        simulator.bpu.context_switch(0)
        assert simulator.bpu.btb.lookup(self.branch.pc).hit


class TestPartitionedCapacity:
    """Set-partitioned ASID mode: tenants cannot evict each other's entries."""

    def _fill(self, btb, count: int, base_pc: int = 0x500000) -> list[Instruction]:
        branches = [
            Instruction.branch(base_pc + 64 * i, BranchType.UNCONDITIONAL, True,
                               base_pc + 64 * i + 0x400)
            for i in range(count)
        ]
        for branch in branches:
            btb.update(branch)
        return branches

    @pytest.mark.parametrize(
        "make_btb",
        [
            lambda: ConventionalBTB(256, associativity=8),
            lambda: BTBX(256),
        ],
    )
    def test_neighbor_pressure_cannot_evict_partitioned_entries(self, make_btb):
        btb = make_btb()
        btb.configure_partitions((1, 1))
        victims = self._fill(btb, 32, base_pc=0x500000)
        hits_before = sum(btb.lookup(b.pc).hit for b in victims)
        # Tenant 1 hammers far more branches than its slice can hold.
        btb.set_active_asid(1)
        self._fill(btb, 4 * btb.capacity_entries(), base_pc=0x900000)
        btb.set_active_asid(0)
        hits_after = sum(btb.lookup(b.pc).hit for b in victims)
        assert hits_after == hits_before

    def test_shared_tagged_btb_does_suffer_neighbor_pressure(self):
        """Contrast case: without partitions the neighbour evicts the victim."""
        btb = ConventionalBTB(64, associativity=8)
        victims = self._fill(btb, 32, base_pc=0x500000)
        btb.set_active_asid(1)
        self._fill(btb, 4 * btb.capacity_entries(), base_pc=0x900000)
        btb.set_active_asid(0)
        hits_after = sum(btb.lookup(b.pc).hit for b in victims)
        assert hits_after < 32

    def test_partition_counts_follow_weights(self):
        btb = ConventionalBTB(256, associativity=8)  # 32 sets
        btb.configure_partitions((4, 1, 1))
        counts = btb.partition_set_counts()
        assert sum(counts) == 32
        assert counts[0] > counts[1] == counts[2] >= 1

    def test_removing_partitions_invalidates_slice_indexed_entries(self):
        """Going back to shared indexing must not leave slice-indexed entries
        reachable (or unreachable-but-aliasable) under whole-structure sets."""
        btb = ConventionalBTB(256, associativity=8)
        btb.configure_partitions((1, 1))
        branches = [
            Instruction.branch(0x500000 + 4 * i, BranchType.UNCONDITIONAL, True,
                               0x500000 + 4 * i + 0x400)
            for i in range(16)  # stride of one set: walks the whole 16-set slice
        ]
        for branch in branches:
            btb.update(branch)
        assert all(btb.lookup(b.pc).hit for b in branches)
        btb.configure_partitions(None)
        assert not any(btb.lookup(b.pc).hit for b in branches)

    def test_partitioning_smaller_than_tenant_count_falls_back_to_sharing(self):
        btb = ConventionalBTB(16, associativity=8)  # 2 sets
        btb.configure_partitions((1, 1, 1))
        assert btb.partition_set_counts() is None

    def test_fallback_still_validates_weights_and_invalidates(self):
        btb = ConventionalBTB(256, associativity=8)  # 32 sets
        with pytest.raises(ConfigurationError):
            btb.configure_partitions((1, 0) + (1,) * 40)
        btb.configure_partitions((1, 1))
        branch = Instruction.branch(0x500000, BranchType.UNCONDITIONAL, True, 0x500400)
        btb.update(branch)
        assert btb.lookup(branch.pc).hit
        # Falling back from a partitioned map must invalidate slice-indexed
        # entries, exactly like returning to shared explicitly does.
        btb.configure_partitions((1,) * 64)
        assert btb.partition_set_counts() is None
        assert not btb.lookup(branch.pc).hit

    def test_bad_partition_weights_rejected(self):
        btb = ConventionalBTB(256, associativity=8)
        for weights in ((), (0,), (-1, 2), (1.5, 1), (True, 1)):
            with pytest.raises(ConfigurationError):
                btb.configure_partitions(weights)

    def test_btbx_companion_falls_back_to_sharing_when_too_small(self):
        btb = BTBX(256, companion_divisor=256)  # 1-entry companion
        btb.configure_partitions((1, 1))
        assert btb.partition_set_counts() == [16, 16]
        assert btb.companion.partition_set_counts() is None

    def test_ideal_btb_accepts_partitions_as_noop(self):
        btb = IdealBTB()
        btb.configure_partitions((2, 1))
        assert btb.partition_set_counts() is None
        with pytest.raises(ConfigurationError):
            btb.configure_partitions((0,))

    def test_execute_scenario_reports_weighted_partition_sets(self):
        result = execute_scenario(
            "noisy_neighbor",
            style=BTBStyle.CONVENTIONAL,
            asid_mode=ASIDMode.PARTITIONED,
            instructions=12_000,
            warmup_instructions=3_000,
        )
        partitions = result.partition_sets
        assert set(partitions) == {"noisy", "victim_a", "victim_b"}
        assert partitions["noisy"] > 2 * partitions["victim_a"]
        assert partitions["victim_a"] == partitions["victim_b"]
        # Shared modes report no partition map.
        shared = execute_scenario(
            "noisy_neighbor",
            style=BTBStyle.CONVENTIONAL,
            asid_mode=ASIDMode.TAGGED,
            instructions=12_000,
            warmup_instructions=3_000,
        )
        assert shared.partition_sets is None


class TestRunScenario:
    def test_solo_baseline_reproduces_single_trace_simulation(self):
        """Acceptance: one tenant, no switches == the plain simulate() path."""
        instructions, warmup = 24_000, 8_000
        for asid_mode in (ASIDMode.FLUSH, ASIDMode.TAGGED, ASIDMode.PARTITIONED):
            scenario = execute_scenario(
                "solo_baseline",
                style=BTBStyle.BTBX,
                asid_mode=asid_mode,
                budget_kib=14.5,
                instructions=instructions,
                warmup_instructions=warmup,
            )
            trace = default_store().get("server_001", instructions)
            machine = default_machine_config(
                btb_style=BTBStyle.BTBX, fdip_enabled=True, isa=trace.isa, asid_mode=asid_mode
            )
            btb = make_btb_for_budget(BTBStyle.BTBX, 14.5, isa=trace.isa)
            solo = FrontEndSimulator(machine, btb=btb).run(trace, warmup_instructions=warmup)

            assert scenario.context_switches == 0
            left = _result_to_payload(scenario.aggregate)
            right = _result_to_payload(solo)
            left.pop("workload"), right.pop("workload")
            assert left == right

    def test_flush_and_tagged_mpki_differ_measurably(self):
        """Acceptance: consolidated_server separates the two ASID modes."""
        results = {
            mode: execute_scenario(
                "consolidated_server",
                style=BTBStyle.BTBX,
                asid_mode=mode,
                instructions=48_000,
                warmup_instructions=16_000,
            )
            for mode in (ASIDMode.FLUSH, ASIDMode.TAGGED)
        }
        flush, tagged = results[ASIDMode.FLUSH], results[ASIDMode.TAGGED]
        assert flush.context_switches == tagged.context_switches > 0
        assert abs(flush.aggregate.btb_mpki - tagged.aggregate.btb_mpki) > 0.5
        # Warm tenants re-use retained state, so flushing must cost misses.
        assert flush.aggregate.btb_mpki > tagged.aggregate.btb_mpki
        for result in (flush, tagged):
            assert set(result.per_tenant) == {"frontend", "search", "ads", "feed"}

    def test_per_tenant_results_sum_to_aggregate(self):
        result = execute_scenario(
            "noisy_neighbor",
            style=BTBStyle.CONVENTIONAL,
            asid_mode=ASIDMode.FLUSH,
            instructions=24_000,
            warmup_instructions=6_000,
        )
        tenants = list(result.per_tenant.values())
        for field in ("instructions", "btb_misses_taken", "branches", "execute_flushes",
                      "direction_mispredictions", "target_mispredictions", "l1i_misses"):
            assert sum(getattr(t, field) for t in tenants) == getattr(result.aggregate, field)
        assert sum(t.cycles for t in tenants) == pytest.approx(result.aggregate.cycles)
        # Weighted scheduling: the noisy tenant gets ~4x the victims' share.
        noisy = result.per_tenant["noisy"].instructions
        victim = result.per_tenant["victim_a"].instructions
        assert noisy > 2 * victim

    def test_cold_semantics_defeats_tagged_retention(self):
        """Fresh ASIDs every turn: retained state is dead weight, so tagged
        retention cannot beat flushing the way it does in the warm scenario."""
        results = {
            mode: execute_scenario(
                "microservice_churn",
                style=BTBStyle.BTBX,
                asid_mode=mode,
                instructions=24_000,
                warmup_instructions=6_000,
            )
            for mode in (ASIDMode.FLUSH, ASIDMode.TAGGED)
        }
        flush, tagged = results[ASIDMode.FLUSH], results[ASIDMode.TAGGED]
        assert flush.context_switches == tagged.context_switches > 0
        assert tagged.aggregate.btb_mpki >= flush.aggregate.btb_mpki * 0.9


class TestScenarioJobs:
    def _job(self, **overrides):
        settings = dict(
            scenario="consolidated_server",
            instructions=12_000,
            warmup_instructions=4_000,
            style=BTBStyle.BTBX,
            asid_mode=ASIDMode.TAGGED,
            fdip_enabled=True,
            budget_kib=14.5,
        )
        settings.update(overrides)
        return ScenarioJob(**settings)

    def test_hash_stable_and_sensitive(self):
        base = self._job()
        assert base.config_hash() == self._job().config_hash()
        variants = [
            self._job(scenario="microservice_churn"),
            self._job(instructions=13_000),
            self._job(warmup_instructions=0),
            self._job(style=BTBStyle.CONVENTIONAL),
            self._job(asid_mode=ASIDMode.FLUSH),
            self._job(fdip_enabled=False),
            self._job(budget_kib=7.25),
        ]
        hashes = {job.config_hash() for job in variants}
        assert len(hashes) == len(variants)
        assert base.config_hash() not in hashes

    def test_scenario_and_plain_jobs_never_collide(self):
        from repro.experiments.engine import SimJob

        plain = SimJob(
            workload="consolidated_server",  # same string, different meaning
            instructions=12_000,
            warmup_instructions=4_000,
            style=BTBStyle.BTBX,
            fdip_enabled=True,
            budget_kib=14.5,
        )
        assert plain.config_hash() != self._job().config_hash()

    def test_serial_and_parallel_scenario_results_identical(self):
        """Acceptance: scenario cells are bit-identical across worker counts."""
        jobs = [self._job(), self._job(asid_mode=ASIDMode.FLUSH)]
        serial = ExperimentEngine(workers=1).run_jobs(jobs)
        parallel = ExperimentEngine(workers=2).run_jobs(jobs)
        for left, right in zip(serial, parallel):
            assert _result_to_payload(left.result) == _result_to_payload(right.result)
            assert left.scenario is not None and right.scenario is not None
            assert left.scenario.context_switches == right.scenario.context_switches
            for name in left.scenario.per_tenant:
                assert _result_to_payload(left.scenario.per_tenant[name]) == \
                    _result_to_payload(right.scenario.per_tenant[name])

    def test_warm_cache_rerun_runs_zero_scenario_simulations(self, tmp_path):
        """Acceptance: a warm-cache rerun performs zero simulations."""
        jobs = [self._job(), self._job(style=BTBStyle.CONVENTIONAL)]
        first = ExperimentEngine(workers=1, cache_dir=tmp_path)
        warm = first.run_jobs(jobs)
        assert first.stats()["executed"] == len(jobs)

        second = ExperimentEngine(workers=1, cache_dir=tmp_path)
        cold = second.run_jobs(jobs)
        assert second.stats()["executed"] == 0
        assert second.stats()["disk_hits"] == len(jobs)
        for left, right in zip(warm, cold):
            assert _result_to_payload(left.result) == _result_to_payload(right.result)
            assert left.scenario.to_dict() == right.scenario.to_dict()

    def test_scenario_study_driver(self):
        from repro.experiments import scenario_study
        from repro.experiments.config import ExperimentScale

        tiny = ExperimentScale(
            name="tiny", instructions=10_000, warmup_fraction=0.3,
            server_workloads=1, client_workloads=1,
        )
        result = scenario_study.run(
            tiny,
            scenarios=["solo_baseline", "consolidated_server"],
            styles=(BTBStyle.BTBX,),
            engine=ExperimentEngine(workers=1),
        )
        assert set(result["scenarios"]) == {"solo_baseline", "consolidated_server"}
        cell = result["scenarios"]["consolidated_server"]
        assert set(cell["configs"]) == {
            "BTB-X/flush", "BTB-X/tagged", "BTB-X/partitioned"
        }
        report = scenario_study.format_report(result)
        assert "consolidated_server" in report and "BTB-X/tagged" in report
        assert "BTB-X/partitioned" in report

    def test_rejects_bad_jobs(self):
        with pytest.raises(ConfigurationError):
            self._job(instructions=0)
        with pytest.raises(ConfigurationError):
            self._job(budget_kib=0.0)
        with pytest.raises(ConfigurationError):
            self._job(scenario="never_registered")

    def test_job_pins_resolved_spec_at_construction(self):
        """A job built from a user-registered scenario must stay executable in
        a process that never saw the registration (spawn-style worker pools),
        so the resolved spec rides on the job instead of being re-looked-up."""
        from repro.scenarios import register_scenario
        from repro.scenarios.presets import _REGISTRY

        custom = ScenarioSpec(
            name="custom_pinned",
            tenants=(TenantSpec("a", "client_001"), TenantSpec("b", "client_002")),
            quantum_instructions=1_000,
        )
        register_scenario(custom)
        try:
            job = self._job(scenario="custom_pinned", instructions=6_000,
                            warmup_instructions=2_000)
            assert job.spec is custom
            del _REGISTRY["custom_pinned"]  # simulate a fresh worker interpreter
            stable_hash = job.config_hash()  # no registry lookup involved
            assert stable_hash == job.config_hash()
            outcome = ExperimentEngine(workers=1).run_job(job)
            assert outcome.scenario.scenario == "custom_pinned"
            assert set(outcome.scenario.per_tenant) == {"a", "b"}
        finally:
            _REGISTRY.pop("custom_pinned", None)

    def test_result_fields_stay_complete(self):
        """Every SimulationResult field (minus stats) survives the payload."""
        outcome = ExperimentEngine(workers=1).run_job(self._job(instructions=6_000))
        payload = _result_to_payload(outcome.result)
        assert set(payload) == set(_RESULT_FIELDS)

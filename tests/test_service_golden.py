"""Golden replay through the service path: wire round-trip must be invisible.

Every golden cell can be expressed as a :class:`ScenarioJob`, shipped over
the NDJSON protocol, executed on the service's pool and rehydrated from the
returned payload — and the distilled counters must still be byte-identical
to ``tests/golden/scenario_golden.json``.  Any divergence means the wire
codec, the cache payload round-trip or the service execution path changed
simulation semantics.

Tier-1 runs a fixed subset so the suite stays fast; CI's service smoke job
sets ``REPRO_SERVICE_GOLDEN_FULL=1`` to replay the complete 42+8 grid.
"""

from __future__ import annotations

import os

import pytest

from repro.common.config import ASIDMode
from repro.experiments.engine import ScenarioJob, _payload_to_scenario
from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, ServiceThread
from test_golden_scenarios import (
    GENERATED_SPECS,
    GOLDEN_BUDGET_KIB,
    GOLDEN_INSTRUCTIONS,
    GOLDEN_WARMUP,
    cache_cell_key,
    cache_golden_cells,
    cell_key,
    distill_cache_cell,
    distill_cell,
    golden_cells,
    load_fixture,
)

FULL_REPLAY = os.environ.get("REPRO_SERVICE_GOLDEN_FULL", "").strip() == "1"

#: Tier-1 subset: first/last main cells, one secondary-structure cell, and
#: two hierarchy cells — every distinct payload schema crosses the wire.
SUBSET_MAIN = [0, 1, -1, -2]
SUBSET_CACHE = [0, -1]


def main_cell_job(preset: str, style, mode) -> ScenarioJob:
    # Generated cells are not in the preset registry; their specs are pinned
    # onto the job (None for presets, which resolve by name at construction).
    return ScenarioJob(
        scenario=preset,
        instructions=GOLDEN_INSTRUCTIONS,
        warmup_instructions=GOLDEN_WARMUP,
        style=style,
        asid_mode=mode,
        budget_kib=GOLDEN_BUDGET_KIB,
        spec=GENERATED_SPECS.get(preset),
    )


def cache_cell_job(preset: str, style, cache_mode) -> ScenarioJob:
    return ScenarioJob(
        scenario=preset,
        instructions=GOLDEN_INSTRUCTIONS,
        warmup_instructions=GOLDEN_WARMUP,
        style=style,
        asid_mode=ASIDMode.TAGGED,
        budget_kib=GOLDEN_BUDGET_KIB,
        cache_asid_mode=cache_mode,
    )


def replay_cells():
    """(key, job, distill) triples for the selected grid slice."""
    main = golden_cells()
    cache = cache_golden_cells()
    if not FULL_REPLAY:
        main = [main[i] for i in SUBSET_MAIN]
        cache = [cache[i] for i in SUBSET_CACHE]
    triples = [
        (cell_key(*cell), main_cell_job(*cell),
         lambda result, style=cell[1]: distill_cell(result, style))
        for cell in main
    ]
    triples += [
        (cache_cell_key(*cell), cache_cell_job(*cell),
         lambda result: distill_cache_cell(result))
        for cell in cache
    ]
    return triples


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("golden-service")
    thread = ServiceThread(ServiceConfig(
        socket_path=str(tmp / "svc.sock"),
        workers=2,
        cache_dir=str(tmp / "cache"),
    ))
    address = thread.start()
    try:
        yield address
    finally:
        thread.stop()


@pytest.mark.golden
def test_golden_cells_are_bit_exact_through_the_service(service):
    fixture = load_fixture()
    triples = replay_cells()
    with ServiceClient(service, client="golden-replay") as client:
        reply = client.submit([job for _, job, _ in triples])
        drifted = []
        for (key, _, distill), descr in zip(triples, reply["jobs"]):
            payload = client.result(descr["job_id"], timeout=600)
            actual = distill(_payload_to_scenario(payload))
            if actual != fixture["cells"][key]:
                drifted.append(key)
        stats = client.stats()
    assert not drifted, (
        f"service-path results drifted from the golden fixture for {drifted}; "
        "the wire codec or payload round-trip is not semantics-preserving"
    )
    # The replay really executed (or cache-resolved) every requested cell.
    assert stats["engine"]["submitted"] >= len(triples)

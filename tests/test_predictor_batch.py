"""Property suite: batched commit plans are bit-exact twins of the scalar path.

:mod:`repro.predictor.batch` precomputes, per scheduling piece, every
conditional-branch commit's direction prediction and training effect.  The
contract is strict bit-exactness against the scalar ``predict``/``update``
pair *including* interleaved live reads (a false BTB hit consults
``predict(pc)`` between commits and must observe exactly-current tables).

Hypothesis drives the dimensions the plan's correctness argument leans on:

* **conflict density** -- PCs drawn from small pools against tiny tables force
  index repeats, which is what exercises the segment-cut machinery (both the
  vectorized >=8-element segments and the scalar short-segment path);
* **history lengths** -- gshare/perceptron history register widths around the
  sliding-window edge cases (0, 1, < table_bits, > table_bits);
* **warmup-boundary mid-segment** -- a stream cut at an arbitrary point into
  two consecutive plans (exactly what the engine does when a chunk straddles
  the warmup boundary) must equal one uncut scalar replay.
"""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")
hypothesis = pytest.importorskip("hypothesis")

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.common.stats import Stats
from repro.predictor.batch import plan_commits, segment_cuts
from repro.predictor.bimodal import BimodalPredictor
from repro.predictor.gshare import GSharePredictor
from repro.predictor.perceptron import HashedPerceptronPredictor


def _make(kind: str, geometry: int, history: int):
    stats = Stats()
    if kind == "bimodal":
        return BimodalPredictor(table_bits=geometry, stats=stats)
    if kind == "gshare":
        return GSharePredictor(table_bits=geometry, history_bits=history, stats=stats)
    return HashedPerceptronPredictor(
        history_lengths=tuple(sorted({1, history, 2 * history + 1})),
        table_bits=geometry,
        stats=stats,
    )


def _state(predictor):
    if isinstance(predictor, HashedPerceptronPredictor):
        return ([list(t) for t in predictor._tables], predictor._history)
    if isinstance(predictor, GSharePredictor):
        return (list(predictor._counters), predictor._history)
    return list(predictor._counters)


def _scalar_replay(predictor, commits, probes):
    """The scalar front end's commit loop, with interleaved live reads."""
    predictions = []
    interleaved = []
    for position, (pc, taken) in enumerate(commits):
        predicted = predictor.predict(pc)
        predictions.append(predicted)
        predictor.record_outcome(predicted, taken)
        predictor.update(pc, taken)
        probe = probes.get(position)
        if probe is not None:
            interleaved.append(predictor.predict(probe))
    return predictions, interleaved


def _plan_replay(predictor, commits, probes):
    """The batched engine's commit loop over one or more consecutive plans."""
    pcs = np.array([pc for pc, _ in commits], dtype=np.uint64)
    taken = np.array([taken for _, taken in commits], dtype=bool)
    plan = plan_commits(predictor, pcs, taken)
    assert plan is not None
    predictions = []
    interleaved = []
    for k in range(len(commits)):
        predicted = plan.predict(k)
        predictions.append(predicted)
        plan.record_outcome(predicted, taken[k])
        plan.update(k)
        probe = probes.get(k)
        if probe is not None:
            # Live read against the predictor's tables mid-plan: must see
            # every commit <= k applied and nothing beyond.
            interleaved.append(predictor.predict(probe))
    plan.finish()
    return predictions, interleaved


# Small pools against small tables maximize index conflicts; the pc values
# keep realistic address magnitudes (plans hash ``pc >> 2`` as uint64).
_commits = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7).map(lambda i: 0x40_0000 + 4 * i),
        st.booleans(),
    ),
    min_size=1,
    max_size=64,
)
_kinds = st.sampled_from(["bimodal", "gshare", "perceptron"])
_geometry = st.integers(min_value=1, max_value=6)
_history = st.integers(min_value=0, max_value=20)


class TestCommitPlanProperties:
    @settings(deadline=None, max_examples=60)
    @given(commits=_commits, kind=_kinds, geometry=_geometry, history=_history, data=st.data())
    def test_plan_matches_scalar_with_interleaved_reads(
        self, commits, kind, geometry, history, data
    ):
        if kind == "perceptron":
            history = max(history, 1)
        probe_positions = data.draw(
            st.sets(st.integers(min_value=0, max_value=len(commits) - 1), max_size=8)
        )
        probes = {
            position: 0x40_0000 + 4 * data.draw(st.integers(0, 7), label="probe pc")
            for position in probe_positions
        }
        scalar = _make(kind, geometry, history)
        planned = _make(kind, geometry, history)

        scalar_pred, scalar_reads = _scalar_replay(scalar, commits, probes)
        plan_pred, plan_reads = _plan_replay(planned, commits, probes)

        assert plan_pred == scalar_pred
        assert plan_reads == scalar_reads
        assert _state(planned) == _state(scalar)
        assert planned.stats.get("predictions") == scalar.stats.get("predictions")
        assert planned.stats.get("mispredictions") == scalar.stats.get("mispredictions")

    @settings(deadline=None, max_examples=40)
    @given(
        commits=_commits,
        kind=_kinds,
        geometry=_geometry,
        history=_history,
        cut_fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_split_plans_equal_one_scalar_stream(
        self, commits, kind, geometry, history, cut_fraction
    ):
        """A stream cut into two consecutive plans (the warmup boundary falling
        mid-chunk) trains the predictor identically to one uncut scalar pass --
        the second plan must pick up the exact post-first-plan state."""
        if kind == "perceptron":
            history = max(history, 1)
        cut = int(cut_fraction * len(commits))
        scalar = _make(kind, geometry, history)
        planned = _make(kind, geometry, history)

        scalar_pred, _ = _scalar_replay(scalar, commits, {})
        head_pred, _ = _plan_replay(planned, commits[:cut], {}) if cut else ([], [])
        tail_pred, _ = (
            _plan_replay(planned, commits[cut:], {}) if cut < len(commits) else ([], [])
        )

        assert head_pred + tail_pred == scalar_pred
        assert _state(planned) == _state(scalar)

    @settings(deadline=None, max_examples=60)
    @given(indices=st.lists(st.integers(min_value=0, max_value=5), max_size=64))
    def test_segment_cuts_invariants(self, indices):
        """Within every segment all indices are distinct, segments tile the
        stream, and each non-initial segment starts at a repeat point."""
        cuts = segment_cuts(indices)
        assert cuts[0] == 0 and cuts[-1] == len(indices)
        assert cuts == sorted(cuts)
        for left, right in zip(cuts, cuts[1:]):
            segment = indices[left:right]
            assert len(set(segment)) == len(segment)
            if left > 0:
                # The cut was forced: its first index appeared in the previous
                # segment (greedy first-repeat rule).
                assert indices[left] in indices[cuts[cuts.index(left) - 1]:left]

    @settings(deadline=None, max_examples=30)
    @given(
        commits=st.lists(
            st.tuples(st.just(0x40_0000), st.booleans()), min_size=8, max_size=64
        ),
        kind=st.sampled_from(["bimodal", "gshare"]),
    )
    def test_single_pc_stream_is_one_conflict_chain(self, commits, kind):
        """The worst segment-cut case -- every commit hits one table entry, so
        every segment has length 1 and the plan degenerates to a scalar chain."""
        scalar = _make(kind, 4, 6)
        planned = _make(kind, 4, 6)
        scalar_pred, _ = _scalar_replay(scalar, commits, {})
        plan_pred, _ = _plan_replay(planned, commits, {})
        assert plan_pred == scalar_pred
        assert _state(planned) == _state(scalar)

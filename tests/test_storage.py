"""Tests for the storage model behind Tables III and IV."""

from __future__ import annotations

import pytest

from repro.common.config import BTBConfig, BTBStyle, ISAStyle
from repro.btb.btbx import BTBX
from repro.btb.conventional import ConventionalBTB
from repro.btb.ideal import IdealBTB
from repro.btb.pdede import PDedeBTB
from repro.btb.rbtb import ReducedBTB
from repro.btb.storage import (
    CANONICAL_BTBX_ENTRIES,
    BTBStorageModel,
    canonical_budgets_kib,
    make_btb,
    make_btb_for_budget,
)

PAPER_TABLE3_KIB = (0.90625, 1.8125, 3.625, 7.25, 14.5, 29.0, 58.0)
PAPER_TABLE4_PDEDE = (210, 415, 820, 1617, 3190, 6292, 12405)
PAPER_TABLE4_CONV = (116, 232, 464, 928, 1856, 3712, 7424)


class TestTable3:
    def test_set_bits(self):
        assert BTBStorageModel(ISAStyle.ARM64).btbx_set_bits() == 224
        assert BTBStorageModel(ISAStyle.X86).btbx_set_bits() == 230

    @pytest.mark.parametrize("entries,expected_kib", zip(CANONICAL_BTBX_ENTRIES, PAPER_TABLE3_KIB))
    def test_storage_rows_match_paper(self, entries, expected_kib):
        row = BTBStorageModel().btbx_storage_row(entries)
        assert row.storage_kib == pytest.approx(expected_kib)
        assert row.companion_entries == max(entries // 64, 1)

    def test_canonical_budgets(self):
        assert canonical_budgets_kib() == pytest.approx(list(PAPER_TABLE3_KIB))


class TestTable4:
    def test_conventional_capacities_exact(self):
        model = BTBStorageModel()
        for budget, expected in zip(PAPER_TABLE3_KIB, PAPER_TABLE4_CONV):
            assert model.conventional_capacity_for_budget(budget) == expected

    def test_pdede_capacities_close_to_paper(self):
        model = BTBStorageModel()
        for budget, expected in zip(PAPER_TABLE3_KIB, PAPER_TABLE4_PDEDE):
            entries, page_entries, avg_bits, _, _ = model.pdede_capacity_for_budget(budget)
            assert abs(entries - expected) <= 4  # small rounding differences only
            assert page_entries in (32, 64, 128, 256, 512, 1024, 2048)
            assert 31.5 <= avg_bits <= 35.5

    def test_headline_capacity_ratios(self):
        rows = BTBStorageModel().capacity_table()
        for row in rows:
            assert row.btbx_over_conventional == pytest.approx(2.24, abs=0.02)
        assert rows[0].btbx_over_pdede == pytest.approx(1.24, abs=0.03)
        assert rows[-1].btbx_over_pdede == pytest.approx(1.34, abs=0.03)

    def test_x86_ratio_slightly_lower(self):
        arm = BTBStorageModel(ISAStyle.ARM64).capacity_table()[0].btbx_over_conventional
        x86 = BTBStorageModel(ISAStyle.X86).capacity_table()[0].btbx_over_conventional
        assert x86 < arm
        assert x86 == pytest.approx(2.18, abs=0.02)

    def test_btbx_capacity_for_budget_inverse_of_storage(self):
        model = BTBStorageModel()
        for entries in CANONICAL_BTBX_ENTRIES:
            budget = model.btbx_budget_kib(entries)
            recovered, companion = model.btbx_capacity_for_budget(budget)
            assert recovered == entries
            assert companion == max(entries // 64, 1)


class TestFactories:
    def test_make_btb_for_budget_types(self):
        assert isinstance(make_btb_for_budget(BTBStyle.CONVENTIONAL, 14.5), ConventionalBTB)
        assert isinstance(make_btb_for_budget(BTBStyle.PDEDE, 14.5), PDedeBTB)
        assert isinstance(make_btb_for_budget(BTBStyle.BTBX, 14.5), BTBX)
        assert isinstance(make_btb_for_budget(BTBStyle.REDUCED, 14.5), ReducedBTB)
        assert isinstance(make_btb_for_budget(BTBStyle.IDEAL, 14.5), IdealBTB)

    @pytest.mark.parametrize("style", [BTBStyle.CONVENTIONAL, BTBStyle.PDEDE, BTBStyle.BTBX])
    def test_budget_respected(self, style):
        for budget in (0.90625, 7.25, 14.5, 58.0):
            btb = make_btb_for_budget(style, budget)
            assert btb.storage_kib() <= budget * 1.01

    def test_btbx_has_more_entries_than_others_at_same_budget(self):
        conv = make_btb_for_budget(BTBStyle.CONVENTIONAL, 14.5)
        pdede = make_btb_for_budget(BTBStyle.PDEDE, 14.5)
        btbx = make_btb_for_budget(BTBStyle.BTBX, 14.5)
        assert btbx.capacity_entries() > pdede.capacity_entries() > conv.capacity_entries()

    def test_make_btb_from_config(self):
        for style, cls in [
            (BTBStyle.CONVENTIONAL, ConventionalBTB),
            (BTBStyle.PDEDE, PDedeBTB),
            (BTBStyle.BTBX, BTBX),
            (BTBStyle.REDUCED, ReducedBTB),
            (BTBStyle.IDEAL, IdealBTB),
        ]:
            btb = make_btb(BTBConfig(style=style, entries=512, associativity=8))
            assert isinstance(btb, cls)

"""Unit and property tests for the target-offset arithmetic (Section III)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.config import ISAStyle
from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction
from repro.btb.offsets import (
    instruction_stored_offset_bits,
    offset_bits,
    offset_histogram,
    recover_target,
    stored_offset_bits,
    target_offset,
)

addresses = st.integers(min_value=0, max_value=(1 << 48) - 1)


class TestOffsetBits:
    def test_paper_figure3_example(self):
        # Branch PC 0b101101000, target 0b101111000: MSB differing at position 5.
        pc, target = 0b101101000, 0b101111000
        assert offset_bits(pc, target) == 5
        assert target_offset(pc, target) == 0b11000
        # Arm64 stores the offset without the 2 alignment bits: '110'.
        assert stored_offset_bits(pc, target, ISAStyle.ARM64) == 3

    def test_identical_pc_and_target(self):
        assert offset_bits(0x1000, 0x1000) == 0
        assert stored_offset_bits(0x1000, 0x1000) == 0

    def test_x86_keeps_alignment_bits(self):
        pc, target = 0b101101000, 0b101111000
        assert stored_offset_bits(pc, target, ISAStyle.X86) == 5

    def test_returns_store_zero_bits(self):
        assert stored_offset_bits(0x401000, 0x7F0000000000, branch_type=BranchType.RETURN) == 0

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            offset_bits(-1, 0)


class TestRecovery:
    def test_recover_concatenation(self):
        pc, target = 0x0000_7F12_3450_1000, 0x0000_7F12_3450_1F40
        n = offset_bits(pc, target)
        assert recover_target(pc, target_offset(pc, target), n) == target

    def test_recover_rejects_oversized_offset(self):
        with pytest.raises(ValueError):
            recover_target(0x1000, 0b111, 2)

    def test_recover_rejects_negative_width(self):
        with pytest.raises(ValueError):
            recover_target(0x1000, 0, -1)

    @given(addresses, addresses)
    def test_recovery_roundtrip(self, pc, target):
        """Key correctness property of Section III: concatenation recovers targets."""
        n = offset_bits(pc, target)
        assert recover_target(pc, target_offset(pc, target), n) == target

    @given(addresses, addresses, st.integers(min_value=0, max_value=48))
    def test_recovery_with_wider_field(self, pc, target, extra):
        """Storing the offset in a wider way (BTB-X) still recovers the target."""
        n = offset_bits(pc, target)
        width = min(n + extra, 48)
        assert recover_target(pc, target & ((1 << width) - 1), width) == target

    @given(addresses, addresses)
    def test_offset_bits_symmetric(self, pc, target):
        assert offset_bits(pc, target) == offset_bits(target, pc)


class TestInstructionHelpers:
    def test_instruction_stored_offset_bits(self):
        call = Instruction.branch(0x401000, BranchType.CALL, True, 0x7F0000001000)
        ret = Instruction.branch(0x401100, BranchType.RETURN, True, 0x401004)
        assert instruction_stored_offset_bits(call) > 25
        assert instruction_stored_offset_bits(ret) == 0

    def test_offset_histogram(self, handmade_branches):
        histogram = offset_histogram(handmade_branches)
        assert sum(histogram.values()) == len(handmade_branches)
        assert histogram.get(0, 0) >= 1  # the return contributes a zero-bit entry

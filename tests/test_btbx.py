"""Tests for BTB-X and its BTB-XC companion (the paper's core contribution)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import ISAStyle
from repro.common.errors import ConfigurationError
from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction
from repro.btb.btbx import (
    BTBX,
    BTBXC,
    BTBX_WAY_OFFSET_BITS_ARM64,
    BTBX_WAY_OFFSET_BITS_X86,
    METADATA_BITS,
)
from repro.btb.offsets import stored_offset_bits


def _branch(pc, target, branch_type=BranchType.CONDITIONAL):
    return Instruction.branch(pc, branch_type, True, target)


class TestGeometry:
    def test_paper_way_widths(self):
        assert BTBX_WAY_OFFSET_BITS_ARM64 == (0, 4, 5, 7, 9, 11, 19, 25)
        assert BTBX_WAY_OFFSET_BITS_X86 == (0, 5, 6, 7, 9, 12, 20, 27)

    def test_set_bits_match_table3(self):
        btb = BTBX(entries=256)
        # 8 entries x 18 metadata bits + 80 offset bits = 224 bits per set.
        assert METADATA_BITS == 18
        assert btb.set_bits() == 224

    def test_x86_set_bits(self):
        assert BTBX(entries=256, isa=ISAStyle.X86).set_bits() == 230

    def test_storage_matches_table3_row(self):
        btb = BTBX(entries=4096, companion_divisor=64)
        assert btb.storage_kib() == pytest.approx(14.5)
        assert btb.capacity_entries() == 4096 + 64

    def test_companion_disabled(self):
        btb = BTBX(entries=256, companion_divisor=0)
        assert btb.companion is None
        assert btb.capacity_entries() == 256

    def test_way_widths_must_be_sorted(self):
        with pytest.raises(ConfigurationError):
            BTBX(entries=64, way_offset_bits=(4, 0, 25, 5, 7, 9, 11, 19))

    def test_entries_must_be_multiple_of_ways(self):
        with pytest.raises(ConfigurationError):
            BTBX(entries=100)


class TestAllocationPolicy:
    def test_short_offset_branch_hit_and_target_recovery(self):
        btb = BTBX(entries=64)
        branch = _branch(0x401000, 0x401038)
        btb.update(branch)
        result = btb.lookup(branch.pc)
        assert result.hit
        assert result.target == branch.target

    def test_long_offset_goes_to_wide_way(self):
        btb = BTBX(entries=64)
        branch = _branch(0x401000, 0x401000 + (1 << 20))  # needs ~19-21 stored bits
        required = stored_offset_bits(branch.pc, branch.target)
        assert required > 11
        btb.update(branch)
        result = btb.lookup(branch.pc)
        assert result.hit
        assert result.target == branch.target

    def test_return_fits_way_zero_and_uses_ras(self):
        btb = BTBX(entries=64)
        ret = _branch(0x401000, 0x7F0000000000, BranchType.RETURN)
        btb.update(ret)
        result = btb.lookup(ret.pc)
        assert result.hit
        assert result.target_from_ras
        assert result.target is None

    def test_offset_wider_than_largest_way_overflows_to_companion(self):
        btb = BTBX(entries=64, companion_divisor=8)
        far_call = _branch(0x401000, 0x7F00_0000_1000, BranchType.CALL)
        assert stored_offset_bits(far_call.pc, far_call.target) > 25
        btb.update(far_call)
        result = btb.lookup(far_call.pc)
        assert result.hit
        assert result.structure == "companion"
        assert result.target == far_call.target

    def test_overflow_without_companion_is_a_miss(self):
        btb = BTBX(entries=64, companion_divisor=0)
        far_call = _branch(0x401000, 0x7F00_0000_1000, BranchType.CALL)
        btb.update(far_call)
        assert not btb.lookup(far_call.pc).hit

    def test_constrained_lru_only_evicts_eligible_ways(self):
        btb = BTBX(entries=8)  # a single set
        # Fill every way with returns (eligible everywhere).
        returns = [_branch(0x400000 + i * 0x1000, 0x500000, BranchType.RETURN) for i in range(8)]
        for ret in returns:
            btb.update(ret)
        # A long-offset branch may only evict from the widest ways.
        long_branch = _branch(0x480000, 0x480000 + (1 << 26))
        required = stored_offset_bits(long_branch.pc, long_branch.target)
        eligible = [w for w, width in enumerate(btb.way_offset_bits) if width >= required]
        btb.update(long_branch)
        assert btb.lookup(long_branch.pc).hit
        # Exactly one return was displaced and it sat in an eligible way.
        missing = [r for r in returns if not btb.lookup(r.pc).hit]
        assert len(missing) == 1
        assert eligible  # sanity: the branch was storable at all

    def test_indirect_branch_target_growth_reallocates(self):
        btb = BTBX(entries=64)
        near = _branch(0x401000, 0x401100, BranchType.INDIRECT)
        far = _branch(0x401000, 0x401000 + (1 << 22), BranchType.INDIRECT)
        btb.update(near)
        btb.update(far)
        result = btb.lookup(0x401000)
        assert result.hit
        assert result.target == far.target

    def test_way_hit_counters(self):
        btb = BTBX(entries=64)
        branch = _branch(0x401000, 0x401010)
        btb.update(branch)
        btb.lookup(branch.pc)
        assert sum(btb.way_hit_counts()) == 1


class TestCompanion:
    def test_direct_mapped_conflict(self):
        companion = BTBXC(entries=4)
        a = _branch(0x400000, 0x500000, BranchType.CALL)
        b = _branch(0x400000 + 4 * 4, 0x600000, BranchType.CALL)  # same index, different tag
        companion.update(a)
        companion.update(b)
        assert companion.lookup(b.pc).hit
        assert not companion.lookup(a.pc).hit

    def test_storage(self):
        assert BTBXC(entries=64).storage_bits() == 64 * 64


class TestTargetRecoveryProperty:
    @settings(max_examples=200, deadline=None)
    @given(
        pc=st.integers(min_value=0, max_value=(1 << 47) - 4),
        delta=st.integers(min_value=-(1 << 24), max_value=1 << 24),
    )
    def test_recovered_target_always_exact(self, pc, delta):
        """Any branch whose offset fits a way must be recovered bit-exactly."""
        pc &= ~0x3
        target = max(0, min((pc + delta) & ~0x3, (1 << 48) - 4))
        branch = _branch(pc, target, BranchType.UNCONDITIONAL)
        btb = BTBX(entries=8)
        btb.update(branch)
        result = btb.lookup(pc)
        if stored_offset_bits(pc, target) <= btb.max_offset_bits:
            assert result.hit
            assert result.target == target

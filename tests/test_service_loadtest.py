"""The headline proof, as a tier-1 test: N clients x M overlapping sweeps.

Drives :func:`repro.service.loadtest.run_load_test` against an in-process
service, which asserts the three service invariants internally (each
distinct cell simulated exactly once, byte-identical payloads across
clients, over-budget grids rejected with a usable suggestion); the test then
cross-checks the returned report.  Cell costs are tiny so the whole proof
runs in seconds.
"""

from __future__ import annotations

import pytest

from repro.service.loadtest import LoadTestFailure, build_sweep, run_load_test
from repro.service.server import ServiceConfig, ServiceThread


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("loadtest")
    thread = ServiceThread(ServiceConfig(
        socket_path=str(tmp / "svc.sock"),
        workers=2,
        cache_dir=str(tmp / "cache"),
    ))
    address = thread.start()
    try:
        yield address
    finally:
        thread.stop()


def test_sweeps_overlap_by_construction():
    first, second = build_sweep(0), build_sweep(1)
    first_hashes = {job.config_hash() for job in first}
    second_hashes = {job.config_hash() for job in second}
    assert first_hashes & second_hashes, "sweeps must share a core grid"
    assert first_hashes != second_hashes, "sweeps must not be identical"


def test_two_clients_two_overlapping_sweeps_execute_each_cell_once(service):
    report = run_load_test(
        service, clients=2, sweeps=2, instructions=2_000, warmup=500, timeout=300
    )
    assert report["duplicates"] == 0
    assert report["payload_mismatches"] == 0
    # Exactly-once: the engine executed one simulation per distinct cell.
    assert report["executed"] == report["unique_cells"]
    # The overlap was real: 2 clients x 2 sweeps of a shared core means most
    # submissions were deduplicated or cache-resolved, not re-run.
    assert report["dedup_hits"] > 0
    assert report["over_budget_probe"]["suggestion"] is not None


def test_rerun_against_warm_cache_executes_nothing(service):
    report = run_load_test(
        service, clients=2, sweeps=2, instructions=2_000, warmup=500, timeout=300
    )
    # Same grids as the previous test, same service: every cell is warm.
    assert report["executed"] == 0
    assert report["duplicates"] == 0


def test_loadtest_rejects_degenerate_parameters(service):
    with pytest.raises(ValueError):
        run_load_test(service, clients=1, sweeps=2)
    with pytest.raises(ValueError):
        run_load_test(service, clients=2, sweeps=1)


def test_loadtest_failure_is_raised_not_swallowed(monkeypatch, service):
    # Force the byte-identity check to trip by faking divergent payloads.
    import repro.service.loadtest as lt

    def fake_worker(address, name, sweeps, instructions, warmup, timeout, out):
        out["payloads"] = {"cell": f"payload-from-{name}"}
        out["sources"] = []

    monkeypatch.setattr(lt, "_client_worker", fake_worker)
    with pytest.raises(LoadTestFailure, match="diverged"):
        lt.run_load_test(service, clients=2, sweeps=2)

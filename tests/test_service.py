"""Unit and integration tests for the sweep service.

Covers the three layers separately — wire protocol codec, budget admission
arithmetic, and the live service (via :class:`ServiceThread` on a unix
socket) — at smoke-sized cell costs so the whole module stays in seconds.
"""

from __future__ import annotations

import json

import pytest

from repro.common.config import ASIDMode, BTBStyle
from repro.experiments.config import FULL_SCALE, SMOKE_SCALE
from repro.experiments.engine import ScenarioJob, SimJob
from repro.service import protocol
from repro.service.budget import BudgetDecision, InstructionBudget, suggest_scale
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ServiceConfig, ServiceThread

INSTRUCTIONS = 2_000
WARMUP = 500


def scenario_job(preset: str = "consolidated_server", **overrides) -> ScenarioJob:
    config = dict(
        scenario=preset,
        instructions=INSTRUCTIONS,
        warmup_instructions=WARMUP,
        style=BTBStyle.BTBX,
        asid_mode=ASIDMode.FLUSH,
    )
    config.update(overrides)
    return ScenarioJob(**config)


# -- protocol codec -----------------------------------------------------------


class TestProtocol:
    def test_encode_decode_roundtrip(self):
        message = {"op": "ping", "v": 1, "nested": {"a": [1, 2]}}
        assert protocol.decode(protocol.encode(message)) == message

    def test_decode_rejects_non_object(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"[1, 2, 3]\n")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"not json at all\n")

    def test_scenario_job_roundtrip_preserves_cache_identity(self):
        job = scenario_job(asid_mode=ASIDMode.PARTITIONED, budget_kib=29.0,
                           cache_asid_mode=ASIDMode.TAGGED)
        rebuilt = protocol.job_from_wire(json.loads(protocol.encode(
            protocol.job_to_wire(job)).decode()))
        assert isinstance(rebuilt, ScenarioJob)
        assert rebuilt.config_hash() == job.config_hash()

    def test_sim_job_roundtrip_preserves_cache_identity(self):
        job = SimJob(
            workload="nginx",
            instructions=INSTRUCTIONS,
            warmup_instructions=WARMUP,
            style=BTBStyle.BTBX,
            fdip_enabled=True,
            btbx_entries=2048,
            way_offset_bits=(0, 4, 8, 12),
        )
        rebuilt = protocol.job_from_wire(json.loads(protocol.encode(
            protocol.job_to_wire(job)).decode()))
        assert isinstance(rebuilt, SimJob)
        assert rebuilt.config_hash() == job.config_hash()

    def test_unknown_kind_is_a_protocol_error(self):
        with pytest.raises(protocol.ProtocolError, match="unknown job kind"):
            protocol.job_from_wire({"kind": "mystery"})

    def test_submit_needs_a_nonempty_job_list(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.jobs_from_wire([])
        with pytest.raises(protocol.ProtocolError):
            protocol.jobs_from_wire("not a list")


# -- budget arithmetic --------------------------------------------------------


class TestInstructionBudget:
    def test_within_budget_is_allowed_and_charged(self):
        clock = [0.0]
        budget = InstructionBudget(budget_instructions=1_000, window_seconds=60,
                                   clock=lambda: clock[0])
        decision = budget.check("alice", 600)
        assert decision.allowed and decision.remaining_instructions == 400
        budget.charge("alice", 600)
        assert not budget.check("alice", 600).allowed
        assert budget.check("bob", 600).allowed  # budgets are per client

    def test_window_slide_recovers_budget(self):
        clock = [0.0]
        budget = InstructionBudget(budget_instructions=1_000, window_seconds=60,
                                   clock=lambda: clock[0])
        budget.charge("alice", 1_000)
        assert not budget.check("alice", 1).allowed
        clock[0] = 61.0
        assert budget.check("alice", 1_000).allowed

    def test_rejection_suggests_largest_fitting_scale(self):
        budget = InstructionBudget(budget_instructions=10 * SMOKE_SCALE.instructions,
                                   window_seconds=60)
        decision = budget.check("alice", 10 * FULL_SCALE.instructions, cells=10)
        assert not decision.allowed
        assert decision.suggestion["scale"] == "smoke"
        assert decision.suggestion["estimated_instructions"] <= budget.budget_instructions
        assert "smoke" in decision.message

    def test_suggestion_degrades_to_cell_count(self):
        # Not even smoke scale fits the whole grid: suggest how many cells do.
        suggestion = suggest_scale(cells=10, remaining=3 * SMOKE_SCALE.instructions)
        assert suggestion["scale"] is None
        assert suggestion["max_cells"] == 3

    def test_decision_serializes(self):
        decision = InstructionBudget().check("alice", 1)
        assert isinstance(decision, BudgetDecision)
        assert json.dumps(decision.as_dict())


# -- the live service ---------------------------------------------------------


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("service")
    thread = ServiceThread(ServiceConfig(
        socket_path=str(tmp / "svc.sock"),
        workers=2,
        cache_dir=str(tmp / "cache"),
    ))
    address = thread.start()
    try:
        yield address
    finally:
        thread.stop()


class TestSweepService:
    def test_ping(self, service):
        with ServiceClient(service) as client:
            reply = client.ping()
        assert reply["version"] == protocol.PROTOCOL_VERSION

    def test_submit_result_and_cache_hit(self, service):
        job = scenario_job()
        with ServiceClient(service, client="t-basic") as client:
            reply = client.submit([job])
            (descr,) = reply["jobs"]
            payload = client.result(descr["job_id"])
            assert payload["result"]["instructions"] == INSTRUCTIONS - WARMUP
            assert "scenario" in payload
            # Resubmitting the identical cell resolves from the warm cache.
            again = client.submit([job])
            (descr2,) = again["jobs"]
            assert descr2["state"] == "done"
            assert descr2["source"] == "cached"
            assert client.result(descr2["job_id"]) == payload
            assert descr2["config_hash"] == descr["config_hash"]

    def test_duplicate_cells_in_one_grid_share_one_execution(self, service):
        job = scenario_job(asid_mode=ASIDMode.TAGGED)
        with ServiceClient(service, client="t-dup") as client:
            before = client.stats()["engine"]["executed"]
            reply = client.submit([job, job, job])
            payloads = [client.result(d["job_id"]) for d in reply["jobs"]]
            after = client.stats()["engine"]["executed"]
        assert payloads[0] == payloads[1] == payloads[2]
        sources = [d["source"] for d in reply["jobs"]]
        assert sources.count("executed") <= 1
        assert after - before <= 1

    def test_status_and_unknown_job(self, service):
        with ServiceClient(service, client="t-status") as client:
            reply = client.submit([scenario_job(style=BTBStyle.CONVENTIONAL)])
            (descr,) = reply["jobs"]
            client.result(descr["job_id"])
            status = client.status(descr["job_id"])
            assert status["state"] == "done"
            with pytest.raises(ServiceError) as err:
                client.status("j999999")
            assert err.value.code == "unknown_job"

    def test_over_budget_rejection_carries_suggestion(self, service):
        monster = scenario_job(instructions=10**9, warmup_instructions=0)
        with ServiceClient(service, client="t-greedy") as client:
            with pytest.raises(ServiceError) as err:
                client.submit([monster])
        assert err.value.code == "over_budget"
        budget = err.value.reply["budget"]
        assert budget["allowed"] is False
        assert budget["suggestion"] is not None

    def test_cancel_before_result(self, service):
        job = scenario_job("shared_services", asid_mode=ASIDMode.PARTITIONED)
        with ServiceClient(service, client="t-cancel") as client:
            reply = client.submit([job])
            (descr,) = reply["jobs"]
            cancelled = client.cancel(descr["job_id"])
            assert cancelled["state"] == "cancelled"
            with pytest.raises(ServiceError) as err:
                client.result(descr["job_id"], timeout=30)
            assert err.value.code == "cancelled"

    def test_stats_shape(self, service):
        with ServiceClient(service, client="t-stats") as client:
            stats = client.stats()
        assert {"engine", "cache", "jobs", "service", "budget"} <= set(stats)
        assert stats["engine"]["executed"] >= 1
        assert stats["cache"]["entries"] >= 1
        assert isinstance(stats["budget"]["usage"], dict)

    def test_malformed_line_is_an_error_not_a_disconnect(self, service):
        import socket

        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(10)
            sock.connect(service)
            sock.sendall(b"this is not json\n")
            reader = sock.makefile("rb")
            reply = json.loads(reader.readline())
            assert reply["ok"] is False and reply["error"] == "protocol"
            # The connection survives; a well-formed request still works.
            sock.sendall(protocol.encode({"op": "ping"}))
            assert json.loads(reader.readline())["ok"] is True

    def test_version_mismatch_is_rejected(self, service):
        with ServiceClient(service) as client:
            with pytest.raises(ServiceError) as err:
                client._call({"op": "ping", "v": 999})
        assert err.value.code == "version"


class TestServiceBackendScoping:
    def test_worker_env_scoped(self):
        """_service_worker restores REPRO_BACKEND even when the job fails."""
        import os

        from repro.common.config import BACKEND_ENV_VAR
        from repro.service.server import _service_worker

        bad = scenario_job("consolidated_server")
        object.__setattr__(bad, "scenario", "nonexistent")
        object.__setattr__(bad, "spec", None)
        previous = os.environ.get(BACKEND_ENV_VAR)
        with pytest.raises(Exception):
            _service_worker(bad, "python", False)
        assert os.environ.get(BACKEND_ENV_VAR) == previous

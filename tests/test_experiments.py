"""Smoke-scale tests of the experiment drivers and the CLI plumbing.

These run every driver at SMOKE scale so the full reproduction pipeline is
exercised end to end (workload generation -> simulation -> aggregation ->
report formatting) while keeping the suite fast.  Shape assertions are loose
on purpose: exact values live in EXPERIMENTS.md, produced at larger scales.
"""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, build_parser, main, run_experiment
from repro.experiments import SMOKE_SCALE, current_scale, QUICK_SCALE
from repro.experiments import (
    ablation_ways,
    fig04_offsets,
    fig09_mpki,
    fig11_sweep,
    fig12_cvp,
    fig13_x86,
    table1_exynos,
    table3_storage,
    table4_capacity,
)
from repro.experiments.runner import clear_trace_cache, evaluation_traces, style_label
from repro.common.config import BTBStyle


@pytest.fixture(scope="module", autouse=True)
def _clear_cache_after_module():
    yield
    clear_trace_cache()


class TestScales:
    def test_presets(self):
        assert SMOKE_SCALE.instructions < QUICK_SCALE.instructions
        assert SMOKE_SCALE.warmup_instructions == int(
            SMOKE_SCALE.instructions * SMOKE_SCALE.warmup_fraction
        )

    def test_current_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert current_scale() is SMOKE_SCALE
        monkeypatch.setenv("REPRO_SCALE", "nonsense")
        assert current_scale() is QUICK_SCALE


class TestStaticDrivers:
    def test_table1(self):
        result = table1_exynos.run()
        assert result["growth_factor_m1_to_m6"] == pytest.approx(5.68, abs=0.05)
        assert "M6" in table1_exynos.format_report(result)

    def test_table3(self):
        result = table3_storage.run()
        measured = [row["storage_kib"] for row in result["rows"]]
        paper = [row["paper_storage_kib"] for row in result["rows"]]
        assert measured == pytest.approx(paper, rel=0.02)
        assert "Table III" in table3_storage.format_report(result)

    def test_table4(self):
        result = table4_capacity.run()
        summary = result["summary"]
        assert summary["btbx_over_conventional_min"] == pytest.approx(2.24, abs=0.02)
        assert 1.2 <= summary["btbx_over_pdede_min"] <= summary["btbx_over_pdede_max"] <= 1.4
        assert "Table IV" in table4_capacity.format_report(result)


class TestTraceDrivers:
    def test_runner_traces_cached_and_labelled(self):
        first = evaluation_traces(SMOKE_SCALE, suites=("ipc1_client",))
        second = evaluation_traces(SMOKE_SCALE, suites=("ipc1_client",))
        assert [t.name for t in first] == [t.name for t in second]
        assert style_label(BTBStyle.BTBX) == "BTB-X"

    def test_fig04(self):
        result = fig04_offsets.run(SMOKE_SCALE)
        bands = result["bands"]
        assert sum(bands.values()) == pytest.approx(1.0, abs=1e-6)
        assert bands["gt_25_bits"] < 0.05
        assert result["cdf"] == sorted(result["cdf"])
        assert "Figure 4" in fig04_offsets.format_report(result)

    def test_fig09(self):
        result = fig09_mpki.run(SMOKE_SCALE)
        averages = result["averages"]
        assert averages["server"]["Conv-BTB"] >= averages["server"]["BTB-X"] * 0.9
        assert averages["client"]["Conv-BTB"] <= averages["server"]["Conv-BTB"] + 1e-9
        assert "Figure 9" in fig09_mpki.format_report(result)

    def test_fig11_smallest_budgets_only(self):
        result = fig11_sweep.run(SMOKE_SCALE, budgets_kib=(0.90625, 3.625))
        curves = result["curves"]["server"]
        assert set(curves) == {"Conv-BTB", "PDede", "BTB-X"}
        for series in curves.values():
            assert len(series) == 2
        assert "Figure 11" in fig11_sweep.format_report(result)

    def test_fig12(self):
        result = fig12_cvp.run(SMOKE_SCALE)
        assert 0 <= result["max_cdf_gap"] <= 0.35
        assert "Figure 12" in fig12_cvp.format_report(result)

    def test_fig13(self):
        result = fig13_x86.run(SMOKE_SCALE)
        assert result["capacity_ratio_vs_conventional"]["x86"] < result[
            "capacity_ratio_vs_conventional"
        ]["arm64"]
        assert len(result["x86_way_sizing_measured"]) == 8
        assert "Figure 13" in fig13_x86.format_report(result)

    def test_ablation_ways(self):
        result = ablation_ways.run(SMOKE_SCALE)
        variants = result["variants"]
        assert variants["uniform25"]["entries"] < variants["paper"]["entries"]
        assert "Ablation" in ablation_ways.format_report(result)


class TestCLI:
    def test_experiment_registry_complete(self):
        assert {
            "fig09_mpki",
            "table4_capacity",
            "table5_energy",
            "scenario_sweep",
            "shared_footprint",
        } <= set(EXPERIMENTS)

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "not_an_experiment"])

    def test_run_experiment_helper(self):
        result = run_experiment("table3_storage", "smoke")
        assert result["experiment"] == "table3_storage"

    def test_main_list(self, capsys):
        assert main(["list"]) == 0
        captured = capsys.readouterr()
        assert "fig09_mpki" in captured.out

    def test_main_run_static_experiment(self, capsys, tmp_path):
        json_path = tmp_path / "out.json"
        assert main(["run", "table4_capacity", "--scale", "smoke", "--json", str(json_path)]) == 0
        assert json_path.exists()
        assert "Table IV" in capsys.readouterr().out

"""Property and metamorphic tests for the scenario sweep engine.

The sweep's contract points, each checked structurally rather than against
pinned numbers (the golden suite owns bit-exactness):

* the composer respects tenant weights to within one scheduling cycle of
  granularity, for arbitrary weights and quanta (hypothesis);
* a one-tenant sweep cell is **bit-identical** to the plain single-trace
  engine cell (the sweep's correctness anchor);
* sweep results are identical across engine worker counts;
* a warm engine cache replays a full sweep with zero simulations;
* variant derivation reuses the preset spec where the axes cross the preset's
  own coordinates, so sweep and study cells share cache entries.
"""

from __future__ import annotations

import csv

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import ASIDMode, BTBStyle
from repro.common.errors import ConfigurationError
from repro.experiments.config import ExperimentScale
from repro.experiments.engine import (
    ExperimentEngine,
    ScenarioJob,
    SimJob,
    _result_to_payload,
)
from repro.experiments.runner import clear_trace_cache
from repro.experiments import scenario_sweep
from repro.experiments.scenario_sweep import (
    DEFAULT_QUANTA,
    quantum_variant,
    tenant_count_variant,
)
from repro.scenarios.compose import TraceComposer
from repro.scenarios.presets import get_scenario
from repro.scenarios.spec import ScenarioSpec, TenantSpec
from repro.traces.store import default_store


@pytest.fixture(autouse=True)
def _bounded_traces():
    yield
    clear_trace_cache()


TINY = ExperimentScale(
    name="tiny", instructions=6_000, warmup_fraction=0.25,
    server_workloads=1, client_workloads=1,
)

_WORKLOADS = ("server_001", "server_009", "client_001", "client_002")


# -- composer properties ------------------------------------------------------


class TestComposerWeightProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        weights=st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=4),
        quantum=st.integers(min_value=16, max_value=512),
        cycles=st.integers(min_value=1, max_value=5),
        partial=st.integers(min_value=0, max_value=499),
    )
    def test_weighted_schedule_respects_weights_within_one_cycle(
        self, weights, quantum, cycles, partial
    ):
        """Each tenant's instruction share tracks its weight to within one
        scheduling cycle's granularity, for any stream length."""
        spec = ScenarioSpec(
            name="prop_weighted",
            tenants=tuple(
                TenantSpec(f"t{i}", _WORKLOADS[i % len(_WORKLOADS)], weight=w)
                for i, w in enumerate(weights)
            ),
            quantum_instructions=quantum,
            policy="weighted",
        )
        cycle = sum(spec.turn_quantum(t) for t in spec.tenants)
        total = cycles * cycle + min(partial, cycle - 1)
        store = default_store()
        traces = {w: store.get(w, 2_048) for w in set(spec.workloads)}
        counts: dict[str, int] = {t.name: 0 for t in spec.tenants}
        for _, tenant, _ in TraceComposer(spec, traces).stream(total):
            counts[tenant] += 1
        assert sum(counts.values()) == total
        weight_total = sum(weights)
        for tenant, weight in zip(spec.tenants, weights):
            exact_share = total * weight / weight_total
            assert abs(counts[tenant.name] - exact_share) < cycle

    @settings(max_examples=20, deadline=None)
    @given(
        quantum=st.integers(min_value=16, max_value=512),
        total=st.integers(min_value=0, max_value=4_096),
        semantics=st.sampled_from(["warm", "cold"]),
    )
    def test_switch_count_prediction_matches_any_stream(self, quantum, total, semantics):
        spec = ScenarioSpec(
            name="prop_switches",
            tenants=(TenantSpec("a", "server_001"), TenantSpec("b", "client_001")),
            quantum_instructions=quantum,
            switch_semantics=semantics,
        )
        store = default_store()
        traces = {w: store.get(w, 2_048) for w in set(spec.workloads)}
        composer = TraceComposer(spec, traces)
        switches, previous = 0, None
        for asid, _, _ in composer.stream(total):
            if previous is not None and asid != previous:
                switches += 1
            previous = asid
        assert switches == composer.context_switch_count(total)


# -- variant derivation -------------------------------------------------------


class TestVariantDerivation:
    def test_preset_coordinates_reuse_the_preset_spec(self):
        """Sweep cells crossing the preset's own quantum/size must be
        cache-identical to the plain scenario_study cells."""
        spec = get_scenario("consolidated_server")
        assert quantum_variant(spec, spec.quantum_instructions) is spec
        assert tenant_count_variant(spec, len(spec.tenants)) is spec

    def test_quantum_variant_renames_and_reschedules(self):
        spec = get_scenario("consolidated_server")
        variant = quantum_variant(spec, 1_024)
        assert variant.name == "consolidated_server@q1024"
        assert variant.quantum_instructions == 1_024
        assert variant.tenants == spec.tenants

    def test_tenant_count_variant_takes_prefixes_and_cycles_beyond(self):
        spec = get_scenario("consolidated_server")
        two = tenant_count_variant(spec, 2)
        assert [t.name for t in two.tenants] == ["frontend", "search"]
        six = tenant_count_variant(spec, 6)
        assert [t.name for t in six.tenants] == [
            "frontend", "search", "ads", "feed", "frontend~2", "search~2"
        ]
        assert six.tenants[4].workload == spec.tenants[0].workload

    def test_bad_tenant_counts_rejected(self):
        spec = get_scenario("consolidated_server")
        for count in (0, -1, 1.5, True):
            with pytest.raises(ConfigurationError):
                tenant_count_variant(spec, count)


# -- engine-level metamorphic properties --------------------------------------


def _tiny_sweep(engine, **overrides):
    settings_ = dict(
        presets=["consolidated_server"],
        styles=(BTBStyle.BTBX,),
        asid_modes=(ASIDMode.FLUSH, ASIDMode.TAGGED, ASIDMode.PARTITIONED),
        quanta=(512, 2_048),
        tenant_counts=(1, 4),
        engine=engine,
    )
    settings_.update(overrides)
    return scenario_sweep.run(TINY, **settings_)


class TestSweepEngineProperties:
    def test_single_tenant_cell_is_bit_identical_to_plain_run(self):
        """Acceptance: a one-tenant sweep cell equals the plain single-trace
        engine cell bit-for-bit, in every ASID mode."""
        engine = ExperimentEngine(workers=1)
        solo = tenant_count_variant(get_scenario("consolidated_server"), 1)
        assert [t.workload for t in solo.tenants] == ["server_001"]
        plain = engine.run_job(
            SimJob(
                workload="server_001",
                instructions=TINY.instructions,
                warmup_instructions=TINY.warmup_instructions,
                style=BTBStyle.BTBX,
                fdip_enabled=True,
                budget_kib=14.5,
            )
        )
        expected = _result_to_payload(plain.result)
        expected.pop("workload")
        for mode in (ASIDMode.FLUSH, ASIDMode.TAGGED, ASIDMode.PARTITIONED):
            cell = engine.run_job(
                ScenarioJob(
                    scenario=solo.name,
                    instructions=TINY.instructions,
                    warmup_instructions=TINY.warmup_instructions,
                    style=BTBStyle.BTBX,
                    asid_mode=mode,
                    budget_kib=14.5,
                    spec=solo,
                )
            )
            assert cell.scenario.context_switches == 0
            actual = _result_to_payload(cell.scenario.aggregate)
            actual.pop("workload")
            assert actual == expected, f"solo sweep cell diverged under {mode.value}"

    def test_repeated_presets_and_axis_values_are_deduplicated(self):
        engine = ExperimentEngine(workers=1)
        once = _tiny_sweep(engine, presets=["consolidated_server"])
        twice = _tiny_sweep(engine, presets=["consolidated_server", "consolidated_server"])
        assert twice == once  # duplicate points would misalign every curve
        doubled_axes = _tiny_sweep(
            engine, presets=["consolidated_server"],
            quanta=(512, 512, 2_048), tenant_counts=(1, 4, 4),
        )
        assert doubled_axes == once

    def test_sweep_results_identical_across_worker_counts(self):
        serial = _tiny_sweep(ExperimentEngine(workers=1))
        parallel = _tiny_sweep(ExperimentEngine(workers=2))
        assert serial == parallel

    def test_warm_cache_replays_full_sweep_with_zero_simulations(self, tmp_path):
        cold_engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
        cold = _tiny_sweep(cold_engine)
        assert cold_engine.stats()["executed"] > 0

        warm_engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
        warm = _tiny_sweep(warm_engine)
        assert warm_engine.stats()["executed"] == 0
        assert warm_engine.stats()["disk_hits"] > 0
        assert warm == cold

    def test_sweep_result_structure_and_partition_sets(self):
        result = _tiny_sweep(ExperimentEngine(workers=1))
        quantum_section = result["quantum_sweep"]["consolidated_server"]
        assert quantum_section["axis"] == [512, 2_048]
        assert set(quantum_section["curves"]) == {
            "BTB-X/flush", "BTB-X/tagged", "BTB-X/partitioned"
        }
        for curve in quantum_section["curves"].values():
            assert len(curve["aggregate_mpki"]) == 2
            assert len(curve["per_tenant_mpki"]) == 2
        partitioned = quantum_section["curves"]["BTB-X/partitioned"]
        assert all(isinstance(p, dict) and p for p in partitioned["partition_sets"])
        shared = quantum_section["curves"]["BTB-X/tagged"]
        assert all(p is None for p in shared["partition_sets"])
        # More tenants on the tenant axis -> at least as many context switches.
        tenant_section = result["tenant_sweep"]["consolidated_server"]
        for curve in tenant_section["curves"].values():
            assert curve["context_switches"][0] == 0  # solo anchor never switches
            assert curve["context_switches"][-1] > 0

    def test_shorter_quanta_mean_more_context_switches(self):
        result = _tiny_sweep(ExperimentEngine(workers=1))
        for curve in result["quantum_sweep"]["consolidated_server"]["curves"].values():
            switches = curve["context_switches"]
            assert switches[0] > switches[-1] >= 0

    def test_csv_rows_cover_every_point(self, tmp_path):
        result = _tiny_sweep(ExperimentEngine(workers=1))
        path = tmp_path / "sweep.csv"
        scenario_sweep.write_csv(result, str(path))
        with open(path, newline="", encoding="utf-8") as handle:
            rows = list(csv.DictReader(handle))
        assert rows and set(rows[0]) == set(scenario_sweep.CSV_FIELDS)
        aggregates = [row for row in rows if row["tenant"] == "(aggregate)"]
        # 3 modes x 1 style x (2 quanta + 2 tenant counts) = 12 aggregate rows.
        assert len(aggregates) == 12
        partitioned = [row for row in aggregates if row["asid_mode"] == "partitioned"]
        assert all(row["partition_sets"] for row in partitioned)

    def test_default_quanta_are_sane(self):
        assert list(DEFAULT_QUANTA) == sorted(DEFAULT_QUANTA)
        assert all(q > 0 for q in DEFAULT_QUANTA)

"""Tests for the direction predictors and the return address stack."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import BranchPredictorConfig
from repro.common.errors import ConfigurationError
from repro.predictor.base import AlwaysTakenPredictor
from repro.predictor.bimodal import BimodalPredictor
from repro.predictor.factory import make_direction_predictor
from repro.predictor.gshare import GSharePredictor
from repro.predictor.perceptron import HashedPerceptronPredictor
from repro.predictor.ras import ReturnAddressStack

ALL_PREDICTORS = [
    lambda: AlwaysTakenPredictor(),
    lambda: BimodalPredictor(table_bits=10),
    lambda: GSharePredictor(table_bits=10, history_bits=8),
    lambda: HashedPerceptronPredictor(table_bits=8),
]


class TestPredictorLearning:
    @pytest.mark.parametrize("factory", ALL_PREDICTORS[1:], ids=["bimodal", "gshare", "perceptron"])
    def test_learns_always_taken_branch(self, factory):
        predictor = factory()
        pc = 0x401000
        for _ in range(64):
            predictor.update(pc, True)
        assert predictor.predict(pc) is True

    @pytest.mark.parametrize("factory", ALL_PREDICTORS[1:], ids=["bimodal", "gshare", "perceptron"])
    def test_learns_never_taken_branch(self, factory):
        predictor = factory()
        pc = 0x402000
        for _ in range(64):
            predictor.update(pc, False)
        assert predictor.predict(pc) is False

    def test_gshare_learns_alternating_pattern(self):
        predictor = GSharePredictor(table_bits=12, history_bits=8)
        pc = 0x403000
        outcome = True
        correct = 0
        total = 400
        for i in range(total):
            prediction = predictor.predict(pc)
            if prediction == outcome:
                correct += 1
            predictor.update(pc, outcome)
            outcome = not outcome
        # After warmup the history-based predictor should track the alternation.
        assert correct / total > 0.7

    def test_perceptron_learns_correlated_branches(self):
        predictor = HashedPerceptronPredictor(table_bits=10)
        rng = random.Random(1)
        lead, follower = 0x404000, 0x404100
        correct = 0
        total = 500
        for i in range(total):
            lead_outcome = rng.random() < 0.5
            predictor.update(lead, lead_outcome)
            prediction = predictor.predict(follower)
            if prediction == lead_outcome:
                correct += 1
            predictor.update(follower, lead_outcome)
        assert correct / total > 0.7

    def test_biased_branch_accuracy_beats_coin_flip(self):
        predictor = HashedPerceptronPredictor(table_bits=10)
        rng = random.Random(7)
        pc = 0x405000
        correct = 0
        total = 1000
        for _ in range(total):
            outcome = rng.random() < 0.95
            if predictor.predict(pc) == outcome:
                correct += 1
            predictor.update(pc, outcome)
        assert correct / total > 0.85

    def test_always_taken(self):
        predictor = AlwaysTakenPredictor()
        assert predictor.predict(0x1000)
        predictor.update(0x1000, False)
        assert predictor.predict(0x1000)

    @pytest.mark.parametrize("factory", ALL_PREDICTORS, ids=["always", "bimodal", "gshare", "perceptron"])
    def test_storage_bits_non_negative(self, factory):
        assert factory().storage_bits() >= 0

    def test_record_outcome_counters(self):
        predictor = BimodalPredictor(table_bits=8)
        predictor.record_outcome(True, True)
        predictor.record_outcome(True, False)
        assert predictor.stats.get("predictions") == 2
        assert predictor.stats.get("mispredictions") == 1


class TestPredictorValidation:
    def test_bimodal_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            BimodalPredictor(table_bits=0)

    def test_gshare_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            GSharePredictor(table_bits=0)

    def test_perceptron_rejects_empty_history(self):
        with pytest.raises(ConfigurationError):
            HashedPerceptronPredictor(history_lengths=())

    def test_factory_builds_each_kind(self):
        for kind, cls in [
            ("hashed_perceptron", HashedPerceptronPredictor),
            ("gshare", GSharePredictor),
            ("bimodal", BimodalPredictor),
            ("always_taken", AlwaysTakenPredictor),
        ]:
            predictor = make_direction_predictor(BranchPredictorConfig(kind=kind))
            assert isinstance(predictor, cls)


class TestReturnAddressStack:
    def test_lifo_order(self):
        ras = ReturnAddressStack(entries=8)
        ras.push(0x1000)
        ras.push(0x2000)
        assert ras.pop() == 0x2000
        assert ras.pop() == 0x1000

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(entries=4)
        assert ras.pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(entries=2)
        for value in (0x1, 0x2, 0x3):
            ras.push(value)
        assert len(ras) == 2
        assert ras.pop() == 0x3
        assert ras.pop() == 0x2
        assert ras.pop() is None

    def test_peek_does_not_pop(self):
        ras = ReturnAddressStack(entries=4)
        ras.push(0xABC)
        assert ras.peek() == 0xABC
        assert len(ras) == 1

    def test_clear(self):
        ras = ReturnAddressStack(entries=4)
        ras.push(0x1)
        ras.clear()
        assert ras.peek() is None

    def test_requires_positive_entries(self):
        with pytest.raises(ConfigurationError):
            ReturnAddressStack(entries=0)

    def test_storage_bits(self):
        assert ReturnAddressStack(entries=64).storage_bits(48) == 64 * 48

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=40))
    def test_balanced_push_pop_matches_list_semantics(self, addresses):
        """Property: without overflow, the RAS behaves exactly like a stack."""
        ras = ReturnAddressStack(entries=len(addresses))
        for address in addresses:
            ras.push(address)
        for expected in reversed(addresses):
            assert ras.pop() == expected

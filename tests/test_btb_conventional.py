"""Tests for the conventional BTB and the ideal BTB."""

from __future__ import annotations

import pytest

from repro.common.config import ISAStyle
from repro.common.errors import ConfigurationError
from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction
from repro.btb.conventional import ConventionalBTB
from repro.btb.ideal import IdealBTB


def _branch(pc, target, branch_type=BranchType.CONDITIONAL):
    return Instruction.branch(pc, branch_type, True, target)


class TestGeometry:
    def test_entry_bits_match_figure1(self):
        btb = ConventionalBTB(entries=1024)
        # valid(1) + tag(12) + type(2) + rep(3) + target(46) = 64 bits.
        assert btb.entry_bits() == 64
        assert btb.storage_bits() == 1024 * 64

    def test_x86_targets_need_two_more_bits(self):
        btb = ConventionalBTB(entries=1024, isa=ISAStyle.X86)
        assert btb.entry_bits() == 66

    def test_non_multiple_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            ConventionalBTB(entries=100, associativity=8)

    def test_non_power_of_two_sets_allowed(self):
        # A 1856-entry BTB (the paper's 14.5 KB point) has 232 sets.
        btb = ConventionalBTB(entries=1856, associativity=8)
        assert btb.num_sets == 232


class TestLookupAndUpdate:
    def test_miss_then_hit_after_update(self):
        btb = ConventionalBTB(entries=64)
        branch = _branch(0x401000, 0x401080)
        assert not btb.lookup(branch.pc).hit
        btb.update(branch)
        result = btb.lookup(branch.pc)
        assert result.hit
        assert result.target == branch.target
        assert result.branch_type is BranchType.CONDITIONAL

    def test_update_refreshes_target(self):
        btb = ConventionalBTB(entries=64)
        btb.update(_branch(0x401000, 0x401080, BranchType.INDIRECT))
        btb.update(_branch(0x401000, 0x409000, BranchType.INDIRECT))
        assert btb.lookup(0x401000).target == 0x409000

    def test_return_hits_report_ras_target(self):
        btb = ConventionalBTB(entries=64)
        btb.update(_branch(0x401000, 0x500000, BranchType.RETURN))
        assert btb.lookup(0x401000).target_from_ras

    def test_lru_eviction_within_set(self):
        btb = ConventionalBTB(entries=8, associativity=8)  # a single set
        branches = [_branch(0x400000 + i * 0x1000, 0x600000 + i * 4) for i in range(9)]
        for branch in branches:
            btb.update(branch)
        # The first-inserted (least recently used) branch was evicted.
        assert not btb.lookup(branches[0].pc).hit
        assert btb.lookup(branches[8].pc).hit

    def test_rehit_protects_from_eviction(self):
        btb = ConventionalBTB(entries=8, associativity=8)
        branches = [_branch(0x400000 + i * 0x1000, 0x600000) for i in range(8)]
        for branch in branches:
            btb.update(branch)
        btb.lookup(branches[0].pc)  # touch branch 0 so it becomes MRU
        btb.update(_branch(0x100000, 0x200000))
        assert btb.lookup(branches[0].pc).hit

    def test_non_branch_update_ignored(self):
        btb = ConventionalBTB(entries=64)
        btb.update(Instruction.non_branch(0x401000))
        assert btb.access_counts().get("writes.total", 0) == 0

    def test_capacity_entries(self):
        assert ConventionalBTB(entries=512).capacity_entries() == 512

    def test_invalidate_all(self):
        btb = ConventionalBTB(entries=64)
        branch = _branch(0x401000, 0x401080)
        btb.update(branch)
        btb.invalidate_all()
        assert not btb.lookup(branch.pc).hit

    def test_access_counters(self):
        btb = ConventionalBTB(entries=64)
        branch = _branch(0x401000, 0x401080)
        btb.update(branch)
        btb.lookup(branch.pc)
        counts = btb.access_counts()
        assert counts["reads.total"] == 1
        assert counts["writes.total"] == 1
        btb.reset_stats()
        assert btb.access_counts()["reads.total"] == 0


class TestIdealBTB:
    def test_never_evicts(self):
        btb = IdealBTB()
        branches = [_branch(0x400000 + i * 4, 0x600000 + i * 4) for i in range(10_000)]
        for branch in branches:
            btb.update(branch)
        assert all(btb.lookup(b.pc).hit for b in branches)
        assert btb.capacity_entries() == 10_000

    def test_miss_before_first_update(self):
        assert not IdealBTB().lookup(0x401000).hit

"""Generated scenarios: recipes, ``gen_`` workload names, determinism, fallback.

The recipe expander's whole contract is that a generated scenario behaves
exactly like a preset one everywhere downstream: workload names resolve in
any process, the expanded spec is a pure function of the recipe, composed
streams are bit-identical across independent trace stores and engine worker
counts, and four-digit tenant counts stay memory-bounded because tenants
sharing a workload share one in-memory :class:`Trace`.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.btb.storage import make_btb_for_budget
from repro.common.config import ASIDMode, BTBStyle, ISAStyle
from repro.common.errors import ConfigurationError, WorkloadError
from repro.experiments.engine import ExperimentEngine, ScenarioJob, execute_job
from repro.scenarios.compose import TraceComposer
from repro.scenarios.generate import (
    MAX_POPULATION,
    ScenarioRecipe,
    generate_scenario,
)
from repro.scenarios.run import execute_scenario
from repro.traces.store import TraceStore
from repro.workloads.spec import WorkloadClass
from repro.workloads.suites import generated_workload_name, workload_spec_by_name


class TestGeneratedWorkloadNames:
    def test_name_round_trips_to_the_same_spec(self):
        name = generated_workload_name("server", 123, 1.5)
        assert name == "gen_server_123_1500"
        spec = workload_spec_by_name(name)
        assert spec.name == name
        assert spec.seed == 123
        # Scale lands on the footprint knob: 500 base functions per module.
        assert spec.functions_per_module == 750
        assert spec.workload_class is WorkloadClass.SERVER
        assert spec.isa is ISAStyle.ARM64

    def test_class_tokens_select_class_and_isa(self):
        cases = {
            "server": (WorkloadClass.SERVER, ISAStyle.ARM64),
            "client": (WorkloadClass.CLIENT, ISAStyle.ARM64),
            "xserver": (WorkloadClass.SERVER, ISAStyle.X86),
            "xclient": (WorkloadClass.CLIENT, ISAStyle.X86),
        }
        for token, (workload_class, isa) in cases.items():
            spec = workload_spec_by_name(generated_workload_name(token, 7, 1.0))
            assert spec.workload_class is workload_class, token
            assert spec.isa is isa, token

    def test_scale_is_carried_in_integer_thousandths(self):
        name = generated_workload_name("client", 0, 0.123)
        assert name.endswith("_123")
        # 80 base client functions scaled by 0.123 rounds to 10.
        assert workload_spec_by_name(name).functions_per_module == 10

    def test_rejects_bad_constructor_arguments(self):
        with pytest.raises(WorkloadError, match="class"):
            generated_workload_name("database", 1, 1.0)
        with pytest.raises(WorkloadError, match="seed"):
            generated_workload_name("server", -1, 1.0)
        with pytest.raises(WorkloadError, match="seed"):
            generated_workload_name("server", True, 1.0)
        with pytest.raises(WorkloadError, match="scale"):
            generated_workload_name("server", 1, 0.0001)

    @pytest.mark.parametrize(
        "name",
        [
            "gen_server_12",  # missing the scale field
            "gen_server_1_100_extra",  # too many fields
            "gen_database_1_100",  # unknown class token
            "gen_server_x_100",  # non-numeric seed
            "gen_server_1_1.5",  # float scale (must be milli-integer)
            "gen_server_1_0",  # zero scale
            "gen_server_1_-5",  # negative scale
        ],
    )
    def test_malformed_generated_names_raise(self, name):
        with pytest.raises(WorkloadError, match="malformed"):
            workload_spec_by_name(name)

    def test_unknown_plain_names_still_raise(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            workload_spec_by_name("no_such_workload")


class TestRecipeValidation:
    def recipe(self, **overrides):
        fields = dict(name="r", tenants=4)
        fields.update(overrides)
        return ScenarioRecipe(**fields)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"name": ""},
            {"tenants": 0},
            {"tenants": -3},
            {"seed": -1},
            {"seed": True},
            {"seed": 1.5},
            {"server_fraction": 1.5},
            {"server_fraction": -0.1},
            {"shared_fraction": 2.0},
            {"isa": "arm64"},
            {"workload_population": 0},
            {"workload_population": MAX_POPULATION + 1},
            {"scale_min": 0.0},
            {"scale_min": 2.0, "scale_max": 1.0},
            {"weight_skew": -0.5},
            {"max_weight": 0},
            {"quantum_instructions": 0},
            {"policy": "lottery"},
            {"switch_semantics": "lukewarm"},
        ],
    )
    def test_bad_fields_are_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            self.recipe(**overrides)

    def test_config_dict_is_json_plain(self):
        import json

        config = self.recipe(seed=9, isa=ISAStyle.X86, weight_skew=1.5).config_dict()
        assert json.loads(json.dumps(config)) == config
        assert config["isa"] == "x86"
        assert config["tenants"] == 4


class TestGenerateScenario:
    def test_expansion_is_deterministic(self):
        recipe = ScenarioRecipe(name="det", tenants=12, seed=42, workload_population=4)
        first = generate_scenario(recipe)
        second = generate_scenario(recipe)
        assert first == second
        assert len(first.tenants) == 12
        assert len(set(first.workloads)) <= 4
        for workload in first.workloads:
            workload_spec_by_name(workload)  # every drawn name resolves

    def test_tenant_prefix_is_stable_across_tenant_counts(self):
        # The rng draws the population first and then one tenant at a time,
        # so the first K tenants of a seed are the same at any tenant count —
        # which makes the tenant-count axis of a sweep comparable.
        small = generate_scenario(ScenarioRecipe(name="p", tenants=6, seed=7))
        large = generate_scenario(ScenarioRecipe(name="p", tenants=48, seed=7))
        assert large.tenants[:6] == small.tenants

    def test_x86_recipes_draw_x86_workloads(self):
        spec = generate_scenario(
            ScenarioRecipe(name="x", tenants=5, seed=3, isa=ISAStyle.X86)
        )
        for workload in spec.workloads:
            assert workload_spec_by_name(workload).isa is ISAStyle.X86

    def test_zero_skew_gives_unit_weights(self):
        spec = generate_scenario(ScenarioRecipe(name="flat", tenants=32, seed=5))
        assert {tenant.weight for tenant in spec.tenants} == {1}

    @settings(max_examples=25, deadline=None)
    @given(
        tenants=st.integers(min_value=1, max_value=48),
        seed=st.integers(min_value=0, max_value=2**16),
        population=st.integers(min_value=1, max_value=8),
        server_fraction=st.floats(min_value=0.0, max_value=1.0),
        weight_skew=st.floats(min_value=0.0, max_value=3.0),
        max_weight=st.integers(min_value=1, max_value=8),
    )
    def test_same_recipe_always_expands_to_the_identical_spec(
        self, tenants, seed, population, server_fraction, weight_skew, max_weight
    ):
        recipe = ScenarioRecipe(
            name="prop",
            tenants=tenants,
            seed=seed,
            workload_population=population,
            server_fraction=server_fraction,
            weight_skew=weight_skew,
            max_weight=max_weight,
        )
        spec = generate_scenario(recipe)
        assert spec == generate_scenario(recipe)
        assert len(spec.tenants) == tenants
        assert len(set(spec.workloads)) <= population
        for tenant in spec.tenants:
            assert 1 <= tenant.weight <= max_weight
            workload_spec_by_name(tenant.workload)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**10))
    def test_composed_stream_prefix_identical_across_trace_stores(self, seed):
        # Worker processes regenerate traces in their own stores; the composed
        # (asid, tenant, instruction) stream must not depend on which store
        # built them.  Instruction is a frozen dataclass, so equality is deep.
        spec = generate_scenario(
            ScenarioRecipe(
                name="stores",
                tenants=5,
                seed=seed,
                workload_population=3,
                quantum_instructions=64,
            )
        )
        streams = []
        for _ in range(2):
            store = TraceStore()
            traces = {w: store.get(w, 512) for w in set(spec.workloads)}
            streams.append(list(TraceComposer(spec, traces).stream(512)))
        assert streams[0] == streams[1]


def thousand_tenant_recipe() -> ScenarioRecipe:
    return ScenarioRecipe(
        name="gen_tenants_kilo",
        tenants=1024,
        seed=11,
        workload_population=8,
        quantum_instructions=256,
    )


class TestThousandTenants:
    INSTRUCTIONS = 2_048

    def test_tenants_sharing_a_workload_share_one_trace_object(self):
        # This identity is the memory bound: 1024 tenants cost at most
        # `workload_population` traces, each wrapped by per-tenant cursors.
        spec = generate_scenario(thousand_tenant_recipe())
        store = TraceStore()
        traces = {w: store.get(w, self.INSTRUCTIONS) for w in set(spec.workloads)}
        composer = TraceComposer(spec, traces)
        identities = {id(composer.tenant_trace(i)) for i in range(len(spec.tenants))}
        assert len(identities) <= 8
        by_workload = {}
        for index, tenant in enumerate(spec.tenants):
            first = by_workload.setdefault(tenant.workload, index)
            assert composer.tenant_trace(index) is composer.tenant_trace(first)

    def test_payloads_bit_identical_across_engine_worker_counts(self):
        spec = generate_scenario(thousand_tenant_recipe())
        jobs = [
            ScenarioJob(
                scenario=spec.name,
                instructions=self.INSTRUCTIONS,
                warmup_instructions=0,
                style=BTBStyle.BTBX,
                asid_mode=mode,
                budget_kib=14.5,
                spec=spec,
            )
            for mode in (ASIDMode.TAGGED, ASIDMode.PARTITIONED)
        ]
        serial_payloads = [execute_job(job) for job in jobs]
        pooled = ExperimentEngine(workers=2)
        outcomes = pooled.run_jobs(jobs)
        pooled_payloads = [pooled.lookup(job) for job in jobs]
        assert serial_payloads == pooled_payloads
        # 1024 tenants overwhelm every partitionable structure at this budget
        # (512-set main, 64-entry companion): the partitioned cell must have
        # fallen back to ASID-tagged sharing and report it.
        partitioned = outcomes[1].scenario
        assert partitioned.partition_sets is None
        assert not partitioned.secondary_partition_sets


class TestPartitionFallbackBoundary:
    """Fallback engages exactly when a structure has fewer sets than tenants."""

    INSTRUCTIONS = 1_024

    @pytest.fixture(scope="class")
    def store(self):
        return TraceStore()

    def run_partitioned(self, tenants, store):
        spec = generate_scenario(
            ScenarioRecipe(
                name=f"fb_{tenants}",
                tenants=tenants,
                seed=11,
                workload_population=4,
                quantum_instructions=64,
            )
        )
        return execute_scenario(
            spec,
            style=BTBStyle.BTBX,
            asid_mode=ASIDMode.PARTITIONED,
            instructions=self.INSTRUCTIONS,
            trace_store=store,
        )

    @pytest.mark.parametrize("tenants", [64, 65, 512, 513])
    def test_fallback_tracks_structure_size(self, tenants, store):
        btb = make_btb_for_budget(BTBStyle.BTBX, 14.5)
        main_sets = btb.num_sets
        companion_sets = btb.companion.num_sets
        assert (main_sets, companion_sets) == (512, 64)

        result = self.run_partitioned(tenants, store)
        if tenants <= main_sets:
            assert result.partition_sets is not None
            counts = list(result.partition_sets.values())
            assert sum(counts) == main_sets
            assert min(counts) >= 1
        else:
            assert result.partition_sets is None
        secondary = result.secondary_partition_sets or {}
        if tenants <= companion_sets:
            assert sum(secondary["companion"].values()) == companion_sets
        else:
            assert "companion" not in secondary

"""Tests for the cache-interference sweep driver (``sweep caches``)."""

from __future__ import annotations

import csv

import pytest

from repro.common.config import ASIDMode, BTBStyle
from repro.experiments import cache_interference
from repro.experiments.config import ExperimentScale
from repro.experiments.engine import ExperimentEngine
from repro.experiments.runner import clear_trace_cache

TINY_SCALE = ExperimentScale(
    name="tiny",
    instructions=6_000,
    warmup_fraction=0.25,
    server_workloads=1,
    client_workloads=1,
)


@pytest.fixture(autouse=True)
def _bounded_traces():
    yield
    clear_trace_cache()


@pytest.fixture(scope="module")
def sweep_result():
    engine = ExperimentEngine(workers=1)
    return cache_interference.run(
        TINY_SCALE,
        presets=["consolidated_server"],
        quanta=(1_024, 4_096),
        tenant_counts=(1, 2, 4),
        engine=engine,
    )


class TestSweepStructure:
    def test_sections_and_curve_alignment(self, sweep_result):
        for section_key, axis in (("quantum_sweep", [1024, 4096]),
                                  ("tenant_sweep", [1, 2, 4])):
            section = sweep_result[section_key]["consolidated_server"]
            assert section["axis"] == axis
            assert set(section["curves"]) == {
                "BTB-X/cache-flush", "BTB-X/cache-tagged", "BTB-X/cache-partitioned"
            }
            for curve in section["curves"].values():
                for series in ("aggregate_l1i_mpki", "aggregate_l2_mpki",
                               "aggregate_ipc", "context_switches",
                               "per_tenant_l1i_mpki", "per_tenant_l2_mpki"):
                    assert len(curve[series]) == len(axis), series

    def test_flush_pays_at_least_tagged_l1i_mpki_at_every_quantum(self, sweep_result):
        """The CI smoke assertion, at test scale: flushing the hierarchy on
        every switch can never miss less than tagged retention."""
        curves = sweep_result["quantum_sweep"]["consolidated_server"]["curves"]
        flush = curves["BTB-X/cache-flush"]["aggregate_l1i_mpki"]
        tagged = curves["BTB-X/cache-tagged"]["aggregate_l1i_mpki"]
        assert all(f >= t for f, t in zip(flush, tagged)), (flush, tagged)

    def test_solo_point_identical_across_cache_modes(self, sweep_result):
        """One tenant means zero switches: the tenant-count=1 point must be
        bit-identical for every cache mode."""
        curves = sweep_result["tenant_sweep"]["consolidated_server"]["curves"]
        solo_values = {
            mode: curves[f"BTB-X/cache-{mode}"]["aggregate_l1i_mpki"][0]
            for mode in ("flush", "tagged", "partitioned")
        }
        assert len(set(solo_values.values())) == 1, solo_values
        assert curves["BTB-X/cache-flush"]["context_switches"][0] == 0

    def test_partitioned_curves_report_cache_slices(self, sweep_result):
        curves = sweep_result["tenant_sweep"]["consolidated_server"]["curves"]
        partitioned = curves["BTB-X/cache-partitioned"]["cache_partition_sets"]
        # Multi-tenant points carry per-level slices; the solo point is one
        # tenant owning everything (still reported).
        assert partitioned[-1] is not None
        assert set(partitioned[-1]) == {"l1i", "l1d", "l2", "llc"}
        shared = curves["BTB-X/cache-tagged"]["cache_partition_sets"]
        assert all(point is None for point in shared)

    def test_per_tenant_l1i_mpki_present_for_scheduled_tenants(self, sweep_result):
        curves = sweep_result["quantum_sweep"]["consolidated_server"]["curves"]
        per_tenant = curves["BTB-X/cache-flush"]["per_tenant_l1i_mpki"][0]
        assert per_tenant  # at least the first tenants got scheduled
        assert all(mpki >= 0.0 for mpki in per_tenant.values())


class TestCsvOutput:
    def test_csv_round_trip(self, sweep_result, tmp_path):
        path = tmp_path / "caches.csv"
        cache_interference.write_csv(sweep_result, str(path))
        with open(path, newline="", encoding="utf-8") as handle:
            rows = list(csv.DictReader(handle))
        assert rows and set(rows[0]) == set(cache_interference.CSV_FIELDS)
        aggregates = [row for row in rows if row["tenant"] == "(aggregate)"]
        # 2 sweeps x (2 + 3 axis points) x 3 cache modes = 15 aggregate rows.
        assert len(aggregates) == 15
        assert {row["cache_mode"] for row in rows} == {"flush", "tagged", "partitioned"}
        for row in aggregates:
            assert float(row["l1i_mpki"]) >= 0.0
            assert float(row["l2_mpki"]) >= 0.0

    def test_format_report_renders_curves(self, sweep_result):
        report = cache_interference.format_report(sweep_result)
        assert "L1-I MPKI vs scheduling quantum" in report
        assert "BTB-X/cache-flush" in report
        assert "L2:" in report


class TestEnergyExport:
    def test_btbx_access_counts_include_the_companion(self):
        """The exported counters are the energy model's input: BTB-X's
        companion reads/writes must be merged in, and the export must agree
        with the per-structure counts inside the energy report."""
        from repro.scenarios.run import execute_scenario

        result = execute_scenario(
            "consolidated_server",
            style=BTBStyle.BTBX,
            asid_mode=ASIDMode.TAGGED,
            instructions=6_000,
            warmup_instructions=1_500,
        )
        counts = result.btb_access_counts
        assert counts["reads.companion"] > 0
        structures = result.energy["structures"]
        assert structures["companion"]["reads"] == counts["reads.companion"]
        assert structures["main"]["reads"] == counts["reads.main"]
        # Totals include the companion's traffic.
        assert counts["reads.total"] >= counts["reads.main"] + counts["reads.companion"]

    def test_companion_counters_respect_the_warmup_boundary(self):
        """The warmup reset must clear the companion's counters too: a
        warmed run's companion reads cover the measurement phase only, so
        they are strictly fewer than the same run measured from cold, and
        never exceed the main BTB's measurement-phase reads (the companion
        is only probed on main-BTB misses)."""
        from repro.scenarios.run import execute_scenario

        def run(warmup: int):
            return execute_scenario(
                "solo_baseline",
                style=BTBStyle.BTBX,
                asid_mode=ASIDMode.TAGGED,
                instructions=6_000,
                warmup_instructions=warmup,
            ).btb_access_counts

        cold, warmed = run(0), run(1_500)
        assert 0 < warmed["reads.companion"] < cold["reads.companion"]
        assert warmed["reads.companion"] <= warmed["reads.main"]

    def test_plain_job_payload_prices_the_companion_like_scenarios(self):
        """table5_energy's inputs (plain-job access_counts) must include the
        companion's traffic, exactly like ScenarioResult.btb_access_counts."""
        from repro.experiments.engine import SimJob, execute_job

        payload = execute_job(
            SimJob(
                workload="server_001",
                instructions=4_000,
                warmup_instructions=1_000,
                style=BTBStyle.BTBX,
                fdip_enabled=True,
                budget_kib=14.5,
            )
        )
        counts = payload["access_counts"]
        assert counts["reads.companion"] > 0
        assert counts["reads.companion"] <= counts["reads.main"]


class TestJobIdentity:
    def test_cache_mode_is_part_of_the_job_identity(self):
        from repro.experiments.engine import ScenarioJob

        base = dict(
            scenario="consolidated_server",
            instructions=4_000,
            warmup_instructions=1_000,
            style=BTBStyle.BTBX,
            asid_mode=ASIDMode.TAGGED,
        )
        legacy = ScenarioJob(**base)
        tagged = ScenarioJob(**base, cache_asid_mode=ASIDMode.TAGGED)
        flush = ScenarioJob(**base, cache_asid_mode=ASIDMode.FLUSH)
        hashes = {job.config_hash() for job in (legacy, tagged, flush)}
        assert len(hashes) == 3
        assert legacy.config_dict()["cache_asid_mode"] is None
        assert tagged.config_dict()["cache_asid_mode"] == "tagged"

    def test_cache_mode_round_trips_through_the_disk_cache(self, tmp_path):
        from repro.experiments.engine import ScenarioJob

        job = ScenarioJob(
            scenario="consolidated_server",
            instructions=4_000,
            warmup_instructions=1_000,
            style=BTBStyle.BTBX,
            asid_mode=ASIDMode.TAGGED,
            cache_asid_mode=ASIDMode.PARTITIONED,
        )
        first = ExperimentEngine(workers=1, cache_dir=tmp_path).run_job(job)
        second = ExperimentEngine(workers=1, cache_dir=tmp_path).run_job(job)
        assert second.scenario.cache_mode == "partitioned"
        assert second.scenario.cache_partition_sets == first.scenario.cache_partition_sets
        assert second.scenario.to_dict() == first.scenario.to_dict()

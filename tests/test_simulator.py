"""Integration tests for the front-end simulator and timing model."""

from __future__ import annotations

import pytest

from repro.common.config import BTBStyle, CoreConfig, default_machine_config
from repro.core.simulator import FrontEndSimulator, simulate_trace
from repro.core.timing import TimingModel
from repro.btb.ideal import IdealBTB
from repro.btb.storage import make_btb_for_budget


class TestTimingModel:
    def test_base_cycles_from_fetch_width(self):
        timing = TimingModel(CoreConfig(fetch_width=6))
        timing.retire_instructions(600)
        assert timing.finalize().base_cycles == 100

    def test_penalties_accumulate(self):
        core = CoreConfig()
        timing = TimingModel(core)
        timing.retire_instructions(60)
        timing.execute_flush()
        timing.decode_resteer()
        timing.icache_stall(12)
        timing.btb_extra_cycle()
        breakdown = timing.finalize()
        assert breakdown.flush_cycles == core.execute_flush_penalty
        assert breakdown.resteer_cycles == core.decode_resteer_penalty
        assert breakdown.icache_stall_cycles == 12
        assert breakdown.btb_extra_cycles == 1
        assert breakdown.total == pytest.approx(
            10 + core.execute_flush_penalty + core.decode_resteer_penalty + 12 + 1
        )

    def test_negative_stall_ignored(self):
        timing = TimingModel(CoreConfig())
        timing.icache_stall(-5)
        assert timing.finalize().icache_stall_cycles == 0


class TestSimulatorBasics:
    def test_result_accounting_consistency(self, small_server_trace):
        result = simulate_trace(small_server_trace, btb_style=BTBStyle.BTBX, warmup_fraction=0.3)
        assert result.instructions == len(small_server_trace) - int(0.3 * len(small_server_trace))
        assert result.cycles == pytest.approx(
            result.base_cycles
            + result.flush_cycles
            + result.resteer_cycles
            + result.icache_stall_cycles
            + result.btb_extra_cycles
        )
        assert 0 < result.ipc <= 6
        assert result.taken_branches <= result.branches
        assert result.l1i_misses <= result.l1i_accesses

    def test_warmup_excluded_from_measurement(self, small_server_trace):
        machine = default_machine_config(btb_style=BTBStyle.CONVENTIONAL, btb_entries=1024)
        full = FrontEndSimulator(machine).run(small_server_trace, warmup_instructions=0)
        warmed = FrontEndSimulator(machine).run(small_server_trace, warmup_instructions=10_000)
        assert warmed.instructions == full.instructions - 10_000
        # Warming must not increase the measured miss ratio.
        assert warmed.btb_mpki <= full.btb_mpki + 1e-9

    def test_max_instructions_cap(self, small_server_trace):
        machine = default_machine_config()
        result = FrontEndSimulator(machine).run(small_server_trace, max_instructions=5_000)
        assert result.instructions == 5_000

    def test_ideal_btb_has_no_capacity_misses(self, small_server_trace):
        machine = default_machine_config(btb_style=BTBStyle.IDEAL)
        simulator = FrontEndSimulator(machine, btb=IdealBTB())
        simulator.run(small_server_trace)
        # Replaying the same trace through the already-trained ideal BTB must
        # produce zero BTB misses: every taken branch has been inserted once.
        replay = simulator.run(small_server_trace)
        assert replay.btb_misses_taken == 0

    def test_results_deterministic(self, small_client_trace):
        first = simulate_trace(small_client_trace, btb_style=BTBStyle.BTBX)
        second = simulate_trace(small_client_trace, btb_style=BTBStyle.BTBX)
        assert first.cycles == second.cycles
        assert first.btb_misses_taken == second.btb_misses_taken

    def test_to_dict_headline_metrics(self, small_client_trace):
        result = simulate_trace(small_client_trace, btb_style=BTBStyle.CONVENTIONAL)
        row = result.to_dict()
        assert row["workload"] == small_client_trace.name
        assert row["btb_mpki"] == pytest.approx(result.btb_mpki)


class TestPaperShapes:
    """Coarse end-to-end checks of the paper's qualitative results."""

    @pytest.fixture(scope="class")
    def server_results(self, small_server_trace):
        results = {}
        for style in (BTBStyle.CONVENTIONAL, BTBStyle.PDEDE, BTBStyle.BTBX):
            machine = default_machine_config(btb_style=style, fdip_enabled=True)
            btb = make_btb_for_budget(style, 1.8125)  # small budget stresses capacity
            simulator = FrontEndSimulator(machine, btb=btb)
            results[style] = simulator.run(small_server_trace, warmup_instructions=12_000)
        return results

    def test_btbx_tracks_more_branches_and_misses_less(self, server_results):
        conv = server_results[BTBStyle.CONVENTIONAL]
        btbx = server_results[BTBStyle.BTBX]
        assert btbx.btb_mpki < conv.btb_mpki
        assert conv.btb_mpki > 1.0

    def test_btbx_at_least_matches_pdede_capacity_trend(self, server_results):
        pdede = server_results[BTBStyle.PDEDE]
        btbx = server_results[BTBStyle.BTBX]
        # BTB-X holds ~1.3x more entries; allow a modest tolerance because the
        # synthetic offset mix is longer-tailed than the paper's traces.
        assert btbx.btb_mpki <= pdede.btb_mpki * 1.25

    def test_server_worse_than_client(self, small_server_trace, small_client_trace):
        machine = default_machine_config(btb_style=BTBStyle.CONVENTIONAL)
        btb_server = make_btb_for_budget(BTBStyle.CONVENTIONAL, 1.8125)
        btb_client = make_btb_for_budget(BTBStyle.CONVENTIONAL, 1.8125)
        server = FrontEndSimulator(machine, btb=btb_server).run(
            small_server_trace, warmup_instructions=10_000
        )
        client = FrontEndSimulator(machine, btb=btb_client).run(
            small_client_trace, warmup_instructions=8_000
        )
        assert server.btb_mpki > client.btb_mpki

    def test_fdip_does_not_hurt(self, small_server_trace):
        base = simulate_trace(small_server_trace, btb_style=BTBStyle.BTBX, fdip_enabled=False)
        fdip = simulate_trace(small_server_trace, btb_style=BTBStyle.BTBX, fdip_enabled=True)
        assert fdip.cycles <= base.cycles + 1e-6

    def test_larger_btb_never_increases_mpki(self, small_server_trace):
        machine = default_machine_config(btb_style=BTBStyle.CONVENTIONAL)
        small = FrontEndSimulator(
            machine, btb=make_btb_for_budget(BTBStyle.CONVENTIONAL, 0.90625)
        ).run(small_server_trace, warmup_instructions=10_000)
        large = FrontEndSimulator(
            machine, btb=make_btb_for_budget(BTBStyle.CONVENTIONAL, 29.0)
        ).run(small_server_trace, warmup_instructions=10_000)
        assert large.btb_mpki <= small.btb_mpki

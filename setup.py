"""Setup shim.

The build environment used for this reproduction has no ``wheel`` package
available offline, so modern PEP-517 editable installs (which build an
editable wheel) fail.  Keeping a classic ``setup.py`` alongside
``pyproject.toml`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which works without ``wheel``.
"""

from setuptools import setup

setup()
